package kifmm

import (
	"math"
	"sort"

	"kifmm/internal/fft"
	"kifmm/internal/geom"
	"kifmm/internal/octree"
	"kifmm/internal/par"
)

// FFTM2L implements the FFT-diagonalized V-list translation. Equivalent and
// check surface points lie on the boundary of a regular p×p×p lattice, and
// the kernel is translation invariant, so the map from a source octant's
// upward-equivalent densities to a target octant's downward-check potentials
// is a 3-D convolution on that lattice: after padding to a 2p-grid and
// transforming, each V-list interaction reduces to a pointwise (Hadamard)
// multiply in frequency space — the "diagonal translation" the paper
// offloads to the GPU while keeping the per-octant FFTs on the CPU.
//
// Both the padded density grids and the kernel grids are real, so all
// spectra are Hermitian (X[-k] = conj(X[k])) and only the non-redundant
// half along the innermost axis is computed, stored, and multiplied:
// HalfLen() = n·n·(n/2+1) complex entries instead of GridLen() = n³. Spectra
// are stored as structure-of-arrays float64 panels — per component pair, a
// re panel of HalfLen() followed by an im panel of HalfLen() — which is the
// layout the Hadamard micro-kernel streams.
//
// Translation spectra are not held per-FFTM2L: they depend only on
// (kernel identity, surface order, level, direction), so they live in a
// process-wide TranslationCache shared by every Operators instance.
type FFTM2L struct {
	ops   *Operators
	n     int // padded grid edge = 2p
	hl    int // half-spectrum length n·n·(n/2+1)
	rplan *fft.PlanR3D
	// surfIdx maps each surface point to its flattened padded-grid index.
	surfIdx []int
	cache   *TranslationCache
	// kid is the kernel's parameter-inclusive identity, the cache-key field
	// that keeps e.g. different Yukawa screenings apart.
	kid string
}

// NewFFTM2L builds the FFT translation machinery for ops, backed by the
// process-wide translation-spectrum cache.
func NewFFTM2L(ops *Operators) *FFTM2L {
	return newFFTM2LCache(ops, SharedTranslations)
}

// newFFTM2LCache is NewFFTM2L with an explicit cache (tests use private
// caches to control bounds and counters).
func newFFTM2LCache(ops *Operators, cache *TranslationCache) *FFTM2L {
	p := ops.Grid.P
	n := 2 * p
	rp := fft.NewPlanR3D(n, n, n)
	f := &FFTM2L{
		ops:   ops,
		n:     n,
		hl:    rp.HalfLen(),
		rplan: rp,
		cache: cache,
		kid:   ops.Kern.Name(),
	}
	f.surfIdx = make([]int, len(ops.Grid.Coords))
	for i, c := range ops.Grid.Coords {
		f.surfIdx[i] = (c[0]*n+c[1])*n + c[2]
	}
	return f
}

// GridLen returns the padded real-grid size n³.
func (f *FFTM2L) GridLen() int { return f.n * f.n * f.n }

// HalfLen returns the Hermitian half-spectrum length n·n·(n/2+1).
func (f *FFTM2L) HalfLen() int { return f.hl }

// SpecLen returns the float64 length of one source spectrum: SrcDim
// component spectra of 2·HalfLen() (re panel, im panel) each.
func (f *FFTM2L) SpecLen() int { return f.ops.Kern.SrcDim() * 2 * f.hl }

// AccLen returns the float64 length of one target's frequency-space
// accumulator: TrgDim component spectra of 2·HalfLen() each.
func (f *FFTM2L) AccLen() int { return f.ops.Kern.TrgDim() * 2 * f.hl }

// SourceSpectrumInto pads the upward-equivalent densities u (surface order)
// into the real grid and half-transforms them into dst (length SpecLen()):
// per source component, a re panel then an im panel. grid is caller scratch
// of length GridLen().
//
//fmm:hotpath
func (f *FFTM2L) SourceSpectrumInto(u []float64, dst, grid []float64) {
	sd := f.ops.Kern.SrcDim()
	hl := f.hl
	for s := 0; s < sd; s++ {
		for i := range grid {
			grid[i] = 0
		}
		for i, gi := range f.surfIdx {
			grid[gi] = u[i*sd+s]
		}
		o := s * 2 * hl
		f.rplan.RForward(grid, dst[o:o+hl], dst[o+hl:o+2*hl])
	}
}

// SourceSpectrum is SourceSpectrumInto with freshly allocated buffers.
func (f *FFTM2L) SourceSpectrum(u []float64) []float64 {
	dst := make([]float64, f.SpecLen())
	f.SourceSpectrumInto(u, dst, make([]float64, f.GridLen()))
	return dst
}

// Translation returns the cached translation spectra for a V-list direction
// at the reference scale (homogeneous kernels). The result holds
// TrgDim·SrcDim component-pair spectra: pair (t, s) occupies
// [(t·sd+s)·2·hl, (t·sd+s+1)·2·hl) as a re panel then an im panel. The slice
// is shared through the process-wide cache and must be treated as read-only.
func (f *FFTM2L) Translation(dx, dy, dz int) []float64 {
	return f.TranslationAt(0, dx, dy, dz)
}

// TranslationAt returns the translation spectra for octants at the given
// level (used directly for non-homogeneous kernels, whose operators cannot
// be rescaled from a reference level). Spectra come from the process-wide
// cache: concurrent callers racing on one direction build it exactly once.
func (f *FFTM2L) TranslationAt(level, dx, dy, dz int) []float64 {
	key := tfKey{Kern: f.kid, P: f.ops.Grid.P, Level: level, Dir: packDir(dx, dy, dz)}
	//fmm:allow hotalloc build closure is called directly by Get and never escapes; stack-allocated
	return f.cache.Get(key, func() []float64 {
		return f.buildTranslation(level, dx, dy, dz)
	})
}

// buildTranslation evaluates the kernel translation tensor on the padded
// lattice and forward-transforms each component pair's real grid. It runs
// only on a translation-cache miss: once per (kernel, order, level,
// direction) over the process lifetime.
//
//fmm:coldcall translation spectra are built once per direction and cached process-wide
func (f *FFTM2L) buildTranslation(level, dx, dy, dz int) []float64 {
	kern := f.ops.Kern
	sd, td := kern.SrcDim(), kern.TrgDim()
	p := f.ops.Grid.P
	n := f.n
	// Lattice spacing for octants of side 2^-level (inner radius
	// RadInner·side/2 around the center).
	side := math.Pow(2, -float64(level))
	step := 2 * (RadInner * side * 0.5) / float64(p-1)
	d := geom.Point{X: float64(dx) * side, Y: float64(dy) * side, Z: float64(dz) * side}

	grids := make([][]float64, td*sd)
	for i := range grids {
		grids[i] = make([]float64, f.GridLen())
	}
	den := make([]float64, sd)
	out := make([]float64, td)
	for mx := -(p - 1); mx <= p-1; mx++ {
		for my := -(p - 1); my <= p-1; my++ {
			for mz := -(p - 1); mz <= p-1; mz++ {
				// Offset between a target check point at lattice i and a
				// source equivalent point at lattice j with m = i − j.
				off := geom.Point{
					X: d.X + float64(mx)*step,
					Y: d.Y + float64(my)*step,
					Z: d.Z + float64(mz)*step,
				}
				gi := ((mod(mx, n))*n+mod(my, n))*n + mod(mz, n)
				for s := 0; s < sd; s++ {
					for x := range den {
						den[x] = 0
					}
					den[s] = 1
					for x := range out {
						out[x] = 0
					}
					kern.Eval(off, geom.Point{}, den, out)
					for t := 0; t < td; t++ {
						grids[t*sd+s][gi] = out[t]
					}
				}
			}
		}
	}
	hl := f.hl
	spec := make([]float64, td*sd*2*hl)
	for q := range grids {
		o := q * 2 * hl
		f.rplan.RForward(grids[q], spec[o:o+hl], spec[o+hl:o+2*hl])
	}
	return spec
}

// vDirs enumerates the 316 V-list directions (the 7³ neighborhood minus the
// 3³ adjacency core) in ascending packDir order.
func vDirs() [][3]int {
	dirs := make([][3]int, 0, 316)
	for dx := -3; dx <= 3; dx++ {
		for dy := -3; dy <= 3; dy++ {
			for dz := -3; dz <= 3; dz++ {
				if maxAbs3(dx, dy, dz) <= 1 {
					continue
				}
				dirs = append(dirs, [3]int{dx, dy, dz})
			}
		}
	}
	return dirs
}

// Prewarm eagerly builds the translation spectra of every V-list direction
// for each given level, in parallel. Plan construction calls it so the first
// Apply — and every later plan for the same (kernel, order) anywhere in the
// process — finds only cache hits; racing prewarms of the same direction
// coalesce into one computation inside the cache.
func (f *FFTM2L) Prewarm(levels []int, workers int) {
	dirs := vDirs()
	if len(levels) == 0 {
		levels = []int{0}
	}
	par.For(workers, len(levels)*len(dirs), func(k int) {
		l := levels[k/len(dirs)]
		d := dirs[k%len(dirs)]
		f.TranslationAt(l, d[0], d[1], d[2])
	})
}

// unpackDir inverts packDir.
func unpackDir(d uint32) (int, int, int) {
	return int(d>>16&0xff) - 3, int(d>>8&0xff) - 3, int(d&0xff) - 3
}

// ExtractCheck inverse-transforms the accumulated frequency-domain check
// potentials (acc, length AccLen(), consumed) and adds the surface values
// (scaled) into dst. grid is caller scratch of length GridLen().
//
//fmm:hotpath
func (f *FFTM2L) ExtractCheck(acc []float64, scale float64, dst, grid []float64) {
	td := f.ops.Kern.TrgDim()
	hl := f.hl
	for t := 0; t < td; t++ {
		o := t * 2 * hl
		f.rplan.RInverse(acc[o:o+hl], acc[o+hl:o+2*hl], grid)
		for i, gi := range f.surfIdx {
			dst[i*td+t] += scale * grid[gi]
		}
	}
}

// Hadamard accumulates one V-list interaction in frequency space on SoA
// half-spectrum panels: acc[t] += Σ_s tf[t·sd+s] ⊙ src[s], with acc of
// length td·2·hl, tf of td·sd·2·hl, and src of sd·2·hl.
//
//fmm:hotpath
func Hadamard(acc, tf, src []float64, sd, td, hl int) {
	for t := 0; t < td; t++ {
		a := acc[t*2*hl : (t+1)*2*hl]
		for s := 0; s < sd; s++ {
			o := (t*sd + s) * 2 * hl
			tp := tf[o : o+2*hl]
			sp := src[s*2*hl : (s+1)*2*hl]
			hadamardPanels(a[:hl], a[hl:], tp[:hl], tp[hl:], sp[:hl], sp[hl:])
		}
	}
}

// hadamardPanels is the register-blocked complex multiply-accumulate
// micro-kernel over one component pair's panels: (ar,ai) += (tr,ti)·(sr,si)
// elementwise. The leading reslices pin every panel to one length so the
// compiler drops the per-element bounds checks, and the two-wide unroll
// keeps both complex products in registers per iteration. Each element is
// one fixed expression, so the result is bit-identical to the scalar loop.
//
//fmm:hotpath
func hadamardPanels(ar, ai, tr, ti, sr, si []float64) {
	n := len(ar)
	if n == 0 {
		return
	}
	ai = ai[:n]
	tr = tr[:n]
	ti = ti[:n]
	sr = sr[:n]
	si = si[:n]
	i := 0
	for ; i+1 < n; i += 2 {
		tr0, ti0, sr0, si0 := tr[i], ti[i], sr[i], si[i]
		tr1, ti1, sr1, si1 := tr[i+1], ti[i+1], sr[i+1], si[i+1]
		ar[i] += tr0*sr0 - ti0*si0
		ai[i] += tr0*si0 + ti0*sr0
		ar[i+1] += tr1*sr1 - ti1*si1
		ai[i+1] += tr1*si1 + ti1*sr1
	}
	if i < n {
		tr0, ti0, sr0, si0 := tr[i], ti[i], sr[i], si[i]
		ar[i] += tr0*sr0 - ti0*si0
		ai[i] += tr0*si0 + ti0*sr0
	}
}

// hasSelectedSource reports whether the node has any V-list source passing
// the filter.
func hasSelectedSource(n *octree.Node, srcSel func(i int32) bool) bool {
	if len(n.V) == 0 {
		return false
	}
	if srcSel == nil {
		return true
	}
	for _, a := range n.V {
		if srcSel(a) {
			return true
		}
	}
	return false
}

func mod(a, n int) int {
	m := a % n
	if m < 0 {
		m += n
	}
	return m
}

// vPair is one V-list interaction inside a target block, by block-local
// source and target indices.
type vPair struct {
	src, tgt int32
}

// vliFFT is the engine's FFT-based V-list pass: level by level (levels
// sorted so scheduling and flop ordering are reproducible), targets are
// processed in fixed-size blocks that bound the live-spectrum footprint.
// Within a block the interactions are regrouped by translation direction —
// the paper's translation-vector batching — so each direction's spectrum is
// resolved once and streamed against every (src, tgt) pair of that class
// before the next is touched. Workers own contiguous target sub-ranges, so
// each target's accumulator is written by one worker, in ascending
// direction-key order: for a fixed target and direction the source octant is
// unique, which makes the per-target accumulation order well-defined and
// identical to the DAG path's — the two executors stay bit-identical.
func (e *Engine) vliFFT(srcSel func(i int32) bool, sc []*evalScratch) {
	f := e.Ops.FFT()
	t := e.Tree
	sd, td := e.Ops.Kern.SrcDim(), e.Ops.Kern.TrgDim()
	hl := f.HalfLen()
	specLen, accLen := f.SpecLen(), f.AccLen()

	// Fold the asymmetric-evaluation source mask into the caller's source
	// filter: a non-source octant's spectrum is all zeros, so dropping it is
	// an exact skip.
	if e.SrcSub != nil {
		inner := srcSel
		srcSel = func(a int32) bool { return e.SrcSub[a] && (inner == nil || inner(a)) }
	}

	// Group V-list targets by level (V interactions are same-level).
	byLevel := make(map[int][]int32)
	var levels []int
	for i := range t.Nodes {
		if !e.trgNode(int32(i)) || !hasSelectedSource(&t.Nodes[i], srcSel) {
			continue
		}
		l := t.Nodes[i].Key.Level()
		if _, ok := byLevel[l]; !ok {
			levels = append(levels, l)
		}
		byLevel[l] = append(byLevel[l], int32(i))
	}
	sort.Ints(levels)

	block := e.vBlockSize(accLen)
	for _, level := range levels {
		targets := byLevel[level]
		tfLevel := 0
		if !e.Ops.Homogeneous() {
			tfLevel = level
		}
		for lo := 0; lo < len(targets); lo += block {
			hi := lo + block
			if hi > len(targets) {
				hi = len(targets)
			}
			blockTargets := targets[lo:hi]

			// Collect the block's sources and its interactions grouped by
			// direction. Pairs append in target order, so each direction's
			// list is sorted by block-local target index.
			srcIdx := make(map[int32]int32)
			var srcs []int32
			dirPairs := make(map[uint32][]vPair)
			var dirs []uint32
			for bi, ti := range blockTargets {
				for _, a := range t.Nodes[ti].V {
					if srcSel != nil && !srcSel(a) {
						continue
					}
					si, ok := srcIdx[a]
					if !ok {
						si = int32(len(srcs))
						srcIdx[a] = si
						srcs = append(srcs, a)
					}
					dx, dy, dz := dirBetween(t.Nodes[a].Key, t.Nodes[ti].Key)
					key := packDir(dx, dy, dz)
					if _, ok := dirPairs[key]; !ok {
						dirs = append(dirs, key)
					}
					dirPairs[key] = append(dirPairs[key], vPair{src: si, tgt: int32(bi)})
				}
			}
			sort.Slice(dirs, func(x, y int) bool { return dirs[x] < dirs[y] })

			// Forward-transform the block's sources into the engine's
			// reusable spectrum buffer.
			vspec := e.vBuf(&e.vspec, len(srcs)*specLen)
			par.ForW(e.Workers, len(srcs), func(w, k int) {
				f.SourceSpectrumInto(e.U[srcs[k]], vspec[k*specLen:(k+1)*specLen], sc[w].grid(f.GridLen()))
			})

			// Resolve the block's translation spectra (cache hits after the
			// plan-time prewarm; parallel builds otherwise).
			tfs := make([][]float64, len(dirs))
			par.For(e.Workers, len(dirs), func(k int) {
				dx, dy, dz := unpackDir(dirs[k])
				tfs[k] = f.TranslationAt(tfLevel, dx, dy, dz)
			})

			// Direction-major Hadamard streaming over contiguous target
			// sub-ranges; each direction's pair list is target-sorted, so a
			// worker's window is one binary-searched contiguous run.
			vacc := e.vBuf(&e.vacc, len(blockTargets)*accLen)
			nchunks := 4 * e.barrierWorkers()
			if nchunks > len(blockTargets) {
				nchunks = len(blockTargets)
			}
			par.ForW(e.Workers, nchunks, func(w, c int) {
				t0 := c * len(blockTargets) / nchunks
				t1 := (c + 1) * len(blockTargets) / nchunks
				if t0 == t1 {
					return
				}
				zero(vacc[t0*accLen : t1*accLen])
				var pairs int64
				for k, dir := range dirs {
					prs := dirPairs[dir]
					plo := sort.Search(len(prs), func(i int) bool { return int(prs[i].tgt) >= t0 })
					phi := sort.Search(len(prs), func(i int) bool { return int(prs[i].tgt) >= t1 })
					tf := tfs[k]
					for _, pr := range prs[plo:phi] {
						Hadamard(vacc[int(pr.tgt)*accLen:(int(pr.tgt)+1)*accLen],
							tf, vspec[int(pr.src)*specLen:(int(pr.src)+1)*specLen], sd, td, hl)
					}
					pairs += int64(phi - plo)
				}
				sc[w].flops[fpVList] += pairs * int64(8*td*sd*hl)
			})

			// Inverse-transform each target's accumulator onto its check
			// surface.
			par.ForW(e.Workers, len(blockTargets), func(w, bi int) {
				ti := blockTargets[bi]
				scale := e.Ops.KernScale(t.Nodes[ti].Key.Level())
				f.ExtractCheck(vacc[bi*accLen:(bi+1)*accLen], scale, e.DChk[ti], sc[w].grid(f.GridLen()))
			})
		}
	}
}
