//go:build race

package kifmm

// raceEnabled reports whether the race detector is active; allocation-count
// tests skip under it, since race instrumentation inflates AllocsPerRun far
// past any meaningful budget.
const raceEnabled = true
