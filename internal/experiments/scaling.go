package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"kifmm/internal/diag"
	"kifmm/internal/geom"
	"kifmm/internal/kernel"
	"kifmm/internal/perfmodel"
)

// Fig3Result reproduces Figure 3 (strong scaling): fixed global N, rank
// counts swept; the paper reports per-phase averages (bars) and the maximum
// across ranks (dots), with 80–90% efficiency from 512→8K ranks.
type Fig3Result struct {
	Uniform    []ScalingPoint
	Nonuniform []ScalingPoint
}

// Fig3 runs the strong-scaling study (uniform and nonuniform).
func Fig3(o Options) *Fig3Result {
	o.defaults()
	if o.N == 0 {
		o.N = 40000
	}
	res := &Fig3Result{}
	for _, dist := range []geom.Distribution{geom.Uniform, geom.Ellipsoid} {
		var pts []ScalingPoint
		for _, p := range o.Ps {
			cfg := baseConfig(o, kernel.Laplace{})
			results := runDistributed(dist, o.N, p, cfg, o.Seed)
			pts = append(pts, scalingPoint(results, p, o.N))
		}
		// Efficiency relative to the first point: E = T₀·p₀/(T_p·p), from
		// the modeled per-rank times.
		if len(pts) > 0 && pts[0].ModelEvalAvg > 0 {
			t0 := pts[0].ModelEvalAvg * float64(pts[0].P)
			for i := range pts {
				pts[i].Efficiency = t0 / (pts[i].ModelEvalAvg * float64(pts[i].P))
			}
		}
		if dist == geom.Uniform {
			res.Uniform = pts
		} else {
			res.Nonuniform = pts
		}
	}
	return res
}

// Format renders the two panels of Figure 3.
func (r *Fig3Result) Format() string {
	return formatScaling("Figure 3 (left): strong scaling, uniform", r.Uniform) +
		formatScaling("Figure 3 (right): strong scaling, nonuniform", r.Nonuniform)
}

// Fig4Result reproduces Figure 4 (weak scaling): fixed points per rank.
// The paper's headline: unlike SC'03, tree construction is only a small
// part of the total (about 10% of evaluation at 65K ranks).
type Fig4Result struct {
	Uniform    []ScalingPoint
	Nonuniform []ScalingPoint
	// SetupModel/EvalModel are calibrated §III-D complexity fits used to
	// extrapolate to the paper's scale.
	SetupModel *perfmodel.Model
	EvalModel  *perfmodel.Model
}

// Fig4 runs the weak-scaling study.
func Fig4(o Options) *Fig4Result {
	o.defaults()
	res := &Fig4Result{}
	var setupSamples, evalSamples []perfmodel.Sample
	for _, dist := range []geom.Distribution{geom.Uniform, geom.Ellipsoid} {
		var pts []ScalingPoint
		for _, p := range o.Ps {
			n := o.PerRank * p
			cfg := baseConfig(o, kernel.Laplace{})
			results := runDistributed(dist, n, p, cfg, o.Seed)
			sp := scalingPoint(results, p, n)
			pts = append(pts, sp)
			// Fit on the nonuniform series: its deep trees are free of the
			// level-parity sawtooth that shallow uniform trees show when the
			// per-rank count is held fixed while p doubles. Setup times are
			// wall-clock of p ranks contending for the host's cores, so they
			// are de-contended to isolated per-rank time before fitting.
			if dist == geom.Ellipsoid {
				contention := float64(runtime.NumCPU()) / float64(p)
				if contention > 1 {
					contention = 1
				}
				setupSamples = append(setupSamples,
					perfmodel.Sample{N: n, P: p, T: sp.SetupAvg.Seconds() * contention})
				evalSamples = append(evalSamples, perfmodel.Sample{N: n, P: p, T: sp.ModelEvalAvg})
			}
		}
		if len(pts) > 0 && pts[0].ModelEvalAvg > 0 {
			t0 := pts[0].ModelEvalAvg
			for i := range pts {
				pts[i].Efficiency = t0 / pts[i].ModelEvalAvg
			}
		}
		if dist == geom.Uniform {
			res.Uniform = pts
		} else {
			res.Nonuniform = pts
		}
	}
	if m, err := perfmodel.Fit(perfmodel.SetupTerms, setupSamples); err == nil {
		res.SetupModel = m
	}
	if m, err := perfmodel.Fit(perfmodel.EvalTerms, evalSamples); err == nil {
		res.EvalModel = m
	}
	return res
}

// Format renders the two panels of Figure 4 plus the setup:eval ratios and
// the paper-scale extrapolation.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	b.WriteString(formatScaling("Figure 4 (left): weak scaling, uniform", r.Uniform))
	b.WriteString(formatScaling("Figure 4 (right): weak scaling, nonuniform", r.Nonuniform))
	b.WriteString("setup share of evaluation (paper: tree setup is a small fraction):\n")
	for _, s := range r.Nonuniform {
		fmt.Fprintf(&b, "  p=%4d  setup/eval = %.2f   sort/setup = %.2f\n", s.P, s.SetupFrac, s.SortFrac)
	}
	if r.SetupModel != nil && r.EvalModel != nil {
		sc := perfmodel.KrakenTableII()
		fmt.Fprintf(&b, "extrapolation to %d ranks × %d pts (fit R² setup %.3f eval %.3f):\n",
			sc.Ranks, sc.PointsPerRank, r.SetupModel.R2, r.EvalModel.R2)
		fmt.Fprintf(&b, "  modeled setup %.1f s, eval %.1f s\n",
			r.SetupModel.Extrapolate(sc), r.EvalModel.Extrapolate(sc))
	}
	return b.String()
}

// Fig5Result reproduces Figure 5: per-rank flop counts for uniform and
// nonuniform distributions, with and without the work-weighted
// repartitioning. The paper's panel shows the nonuniform distribution's
// much larger variance; at laptop scale the weighted repartition nearly
// erases it, so both series are reported to expose the contrast the
// balancer removes.
type Fig5Result struct {
	P int
	// [distribution][balanced] → per-rank flops.
	UniformFlops     [2][]int64
	NonuniformFlops  [2][]int64
	UniformSpread    [2]float64 // max/avg, [unbalanced, balanced]
	NonuniformSpread [2]float64
}

// Fig5 runs the flop-variance study.
func Fig5(o Options) *Fig5Result {
	o.defaults()
	p := o.Ps[len(o.Ps)-1]
	res := &Fig5Result{P: p}
	for _, dist := range []geom.Distribution{geom.Uniform, geom.Ellipsoid} {
		for bi, balanced := range []bool{false, true} {
			n := o.PerRank * p
			cfg := baseConfig(o, kernel.Laplace{})
			cfg.LoadBalance = balanced
			results := runDistributed(dist, n, p, cfg, o.Seed)
			flops := diag.FlopsPerRank(profiles(results), diag.PhaseComp)
			var mx, sum int64
			for _, f := range flops {
				if f > mx {
					mx = f
				}
				sum += f
			}
			spread := float64(mx) * float64(p) / float64(sum)
			if dist == geom.Uniform {
				res.UniformFlops[bi], res.UniformSpread[bi] = flops, spread
			} else {
				res.NonuniformFlops[bi], res.NonuniformSpread[bi] = flops, spread
			}
		}
	}
	return res
}

// Format renders the flops-per-rank series.
func (r *Fig5Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: flops across ranks (p=%d)\n", r.P)
	fmt.Fprintf(&b, "%6s %16s %16s %16s %16s\n", "rank",
		"nonunif(unbal)", "nonunif(bal)", "unif(unbal)", "unif(bal)")
	for i := range r.UniformFlops[0] {
		fmt.Fprintf(&b, "%6d %16d %16d %16d %16d\n", i,
			r.NonuniformFlops[0][i], r.NonuniformFlops[1][i],
			r.UniformFlops[0][i], r.UniformFlops[1][i])
	}
	fmt.Fprintf(&b, "max/avg spread: nonuniform %.2f → %.2f, uniform %.2f → %.2f (unbalanced → balanced)\n",
		r.NonuniformSpread[0], r.NonuniformSpread[1],
		r.UniformSpread[0], r.UniformSpread[1])
	return b.String()
}

// Table2Result reproduces Table II: the per-phase Max/Avg breakdown of the
// evaluation phase for the nonuniform Stokes run, measured at laptop scale
// and extrapolated to the paper's 65,536-rank configuration.
type Table2Result struct {
	P          int
	PerRank    int
	Rows       []diag.Row
	SetupTime  time.Duration
	SortTime   time.Duration
	TreeDepth  int
	EvalModel  *perfmodel.Model
	PaperEvalS float64 // extrapolated total evaluation at Kraken scale
}

// Table2 runs the phase-breakdown study (Stokes kernel, nonuniform).
func Table2(o Options) *Table2Result {
	o.defaults()
	p := o.Ps[len(o.Ps)-1]
	cfg := baseConfig(o, kernel.Stokes{})
	cfg.SurfOrder = 4 // Stokes triples the per-surface-point dof

	var evalSamples []perfmodel.Sample
	var rows []diag.Row
	res := &Table2Result{P: p, PerRank: o.PerRank}
	for _, pi := range o.Ps {
		n := o.PerRank * pi
		rr := runDistributed(geom.Ellipsoid, n, pi, cfg, o.Seed)
		sp := scalingPoint(rr, pi, n)
		evalSamples = append(evalSamples, perfmodel.Sample{N: n, P: pi, T: sp.ModelEvalAvg})
		if pi == p {
			rows = diag.Reduce(profiles(rr), diag.EvalPhases)
			res.SetupTime, _ = maxAvg(rr, diag.PhaseSetup)
			res.SortTime, _ = maxAvg(rr, diag.PhaseSort)
			depth := 0
			for _, r := range rr {
				if d := r.Tree.Tree.MaxLevel(); d > depth {
					depth = d
				}
			}
			res.TreeDepth = depth
		}
	}
	res.Rows = rows
	if m, err := perfmodel.Fit(perfmodel.EvalTerms, evalSamples); err == nil {
		res.EvalModel = m
		res.PaperEvalS = m.Extrapolate(perfmodel.KrakenTableII())
	}
	return res
}

// Format renders the Table II layout plus the setup line and extrapolation.
func (r *Table2Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: %d ranks × %d points/rank, Stokes, nonuniform (tree depth %d)\n",
		r.P, r.PerRank, r.TreeDepth)
	b.WriteString(diag.FormatTable(r.Rows))
	fmt.Fprintf(&b, "setup %.2f s (%.2f s in the particle sort)\n",
		r.SetupTime.Seconds(), r.SortTime.Seconds())
	if r.EvalModel != nil {
		fmt.Fprintf(&b, "extrapolated evaluation at 65,536 ranks × 150K pts: %.0f s (paper: 137 s max / 120 s avg)\n",
			r.PaperEvalS)
	}
	return b.String()
}
