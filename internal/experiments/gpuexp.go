package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"kifmm/internal/diag"
	"kifmm/internal/geom"
	"kifmm/internal/gpu"
	"kifmm/internal/kernel"
	"kifmm/internal/kifmm"
	"kifmm/internal/mpi"
	"kifmm/internal/octree"
	"kifmm/internal/parfmm"
	"kifmm/internal/stream"
)

// Table3Row is one column of Table III: per-phase modeled seconds on a
// single device for one points-per-box value.
type Table3Row struct {
	Q        int
	Total    float64
	Upward   float64
	UList    float64
	VList    float64
	Downward float64
}

// Table3Result reproduces Table III: the single-device q sweep on a uniform
// distribution, showing the U-list/V-list trade-off and the optimal q.
type Table3Result struct {
	N    int
	Rows []Table3Row
}

// Table3 runs the q sweep. Device times are the cost model's seconds;
// CPU-resident sub-steps (U2U, D2D, the per-octant FFTs) are modeled at the
// paper's 0.5 GFlop/s host rate.
func Table3(o Options) *Table3Result {
	o.defaults()
	if o.N == 0 {
		o.N = 100_000
	}
	res := &Table3Result{N: o.N}
	pts := geom.Generate(geom.Uniform, o.N, o.Seed)
	rng := rand.New(rand.NewSource(o.Seed))
	den := make([]float64, o.N)
	for i := range den {
		den[i] = rng.NormFloat64()
	}
	for _, q := range []int{30, 244, 1953} {
		// The paper's q values are N/8^level for N=1M: regular trees of
		// levels 5/4/3. Use the uniform-depth tree at the matching level.
		level := int(math.Round(math.Log(float64(o.N)/float64(q)) / math.Log(8)))
		if level < 1 {
			level = 1
		}
		tr := octree.BuildUniform(pts, level)
		tr.BuildLists(nil)
		ops := kifmm.NewOperators(kernel.Laplace{}, 6, 1e-9)
		e := kifmm.NewEngine(ops, tr)
		e.Workers = o.Workers
		e.Prof = diag.NewProfile()
		e.SetPointDensities(den)
		dev := stream.NewDevice(stream.DefaultParams())
		accel := gpu.New(dev)

		accel.S2U(e)
		e.U2U()
		accel.VLI(e)
		e.XLI()
		e.Downward()
		e.WLI()
		accel.D2T(e)
		accel.ULI(e)

		host := func(phases ...string) float64 {
			var f int64
			for _, ph := range phases {
				f += e.Prof.Flops(ph)
			}
			return dev.HostTime(f).Seconds()
		}
		hostMat := func(phases ...string) float64 {
			var f int64
			for _, ph := range phases {
				f += e.Prof.Flops(ph)
			}
			return dev.HostMatTime(f).Seconds()
		}
		// The Upward/Downward host remainders (U2U, D2D, the solves) are
		// dense matrix-vector work and run at the host's matvec rate; the
		// W/X particle loops at the scalar rate.
		row := Table3Row{
			Q:      q,
			Upward: accel.PhaseTimes[diag.PhaseUpward].Seconds() + hostMat(diag.PhaseUpward),
			UList:  accel.PhaseTimes[diag.PhaseUList].Seconds(),
			VList: accel.PhaseTimes[diag.PhaseVList].Seconds() +
				dev.HostFFTTime(accel.HostFFTFlops).Seconds(),
			Downward: accel.PhaseTimes[diag.PhaseDownward].Seconds() + hostMat(diag.PhaseDownward),
		}
		row.Total = row.Upward + row.UList + row.VList + row.Downward +
			host(diag.PhaseWList, diag.PhaseXList)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Format renders the Table III layout.
func (r *Table3Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: single device, %d uniform points (modeled seconds)\n", r.N)
	fmt.Fprintf(&b, "%-18s", "q")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%12d", row.Q)
	}
	b.WriteString("\n")
	line := func(name string, sel func(Table3Row) float64) {
		fmt.Fprintf(&b, "%-18s", name)
		for _, row := range r.Rows {
			fmt.Fprintf(&b, "%12.3f", sel(row))
		}
		b.WriteString("\n")
	}
	line("Total evaluation", func(r Table3Row) float64 { return r.Total })
	line("Upward Pass", func(r Table3Row) float64 { return r.Upward })
	line("U list", func(r Table3Row) float64 { return r.UList })
	line("V list", func(r Table3Row) float64 { return r.VList })
	line("Downward Pass", func(r Table3Row) float64 { return r.Downward })
	return b.String()
}

// Fig6Point is one sweep point of the device weak-scaling study.
type Fig6Point struct {
	P       int
	N       int
	GPUEval float64 // modeled seconds, device configuration (q tuned for GPU)
	CPUEval float64 // modeled seconds, CPU-only configuration (q tuned for CPU)
	Speedup float64
	WallGPU time.Duration // wall-clock of the simulation itself (diagnostic)
}

// Fig6Result reproduces Figure 6: weak scaling with one device per rank,
// GPU-vs-CPU configuration, sustaining ≈25× modeled speedup.
type Fig6Result struct {
	PerRank int
	Points  []Fig6Point
}

// Fig6 runs the device weak-scaling study. The GPU configuration uses a
// shallower tree (larger q) to favor the compute-bound U-list, the CPU
// configuration a deeper one — both per the paper (≈400 vs ≈100
// points/box, each tuned for its architecture).
func Fig6(o Options) *Fig6Result {
	o.defaults()
	if o.PerRank == 0 || o.PerRank == 4000 {
		o.PerRank = 20_000
	}
	res := &Fig6Result{PerRank: o.PerRank}
	for _, p := range o.Ps {
		n := o.PerRank * p
		pt := Fig6Point{P: p, N: n}

		// Device configuration. The paper uses "roughly 400 points per box"
		// tuned per architecture; 500 keeps every sweep point on a clean
		// tree level (N/8^level comfortably below q), avoiding the
		// level-parity mixing that would shift work into the unaccelerated
		// W/X lists.
		gpuCfg := parfmm.Config{
			Kern: kernel.Laplace{}, Q: 500, SurfOrder: 6,
			Workers: o.Workers, UseFFTM2L: true,
		}
		accels := make([]*gpu.FMMAccel, p)
		devs := make([]*stream.Device, p)
		hostFlops := make([]int64, p)
		hostMatFlops := make([]int64, p)
		t0 := time.Now()
		mpi.Run(p, func(c *mpi.Comm) {
			cfg := gpuCfg
			devs[c.Rank()] = stream.NewDevice(stream.DefaultParams())
			accels[c.Rank()] = gpu.New(devs[c.Rank()])
			cfg.Accel = accels[c.Rank()]
			cpts := geom.GenerateChunk(geom.Uniform, n, o.Seed, c.Rank(), p)
			den := make([]float64, len(cpts))
			for i := range den {
				den[i] = 1
			}
			r := parfmm.Evaluate(c, cpts, den, cfg)
			hostFlops[c.Rank()] = r.Prof.Flops(diag.PhaseXList) + r.Prof.Flops(diag.PhaseWList)
			hostMatFlops[c.Rank()] = r.Prof.Flops(diag.PhaseUpward) + r.Prof.Flops(diag.PhaseDownward)
		})
		pt.WallGPU = time.Since(t0)
		// Per-rank modeled time: device phases + CPU-resident leftovers;
		// the slowest rank sets the wall clock.
		for r := 0; r < p; r++ {
			sec := accels[r].ModeledTotal().Seconds() +
				devs[r].HostTime(hostFlops[r]).Seconds() +
				devs[r].HostMatTime(hostMatFlops[r]).Seconds() +
				devs[r].HostFFTTime(accels[r].HostFFTFlops).Seconds()
			if sec > pt.GPUEval {
				pt.GPUEval = sec
			}
		}

		// CPU-only configuration.
		cpuCfg := parfmm.Config{
			Kern: kernel.Laplace{}, Q: 100, SurfOrder: 6,
			Workers: o.Workers, UseFFTM2L: true,
		}
		results := runDistributed(geom.Uniform, n, p, cpuCfg, o.Seed)
		ref := stream.NewDevice(stream.DefaultParams())
		for _, r := range results {
			sec := ref.HostTime(r.Prof.Flops(diag.PhaseComp)).Seconds()
			if sec > pt.CPUEval {
				pt.CPUEval = sec
			}
		}
		if pt.GPUEval > 0 {
			pt.Speedup = pt.CPUEval / pt.GPUEval
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

// Format renders the Figure 6 series.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: device weak scaling, %d points per device (modeled seconds)\n", r.PerRank)
	fmt.Fprintf(&b, "%6s %10s %12s %12s %9s\n", "p", "N", "GPU eval", "CPU eval", "speedup")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%6d %10d %12.3f %12.3f %8.1fx\n",
			pt.P, pt.N, pt.GPUEval, pt.CPUEval, pt.Speedup)
	}
	return b.String()
}
