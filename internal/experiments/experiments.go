// Package experiments regenerates every table and figure of the paper's
// evaluation section at laptop scale, plus the calibrated extrapolations to
// machine scale. Each experiment returns a typed result with a Format
// method printing the same rows/series the paper reports; the cmd/fmmbench
// CLI and the repository's benchmark suite are thin wrappers around this
// package.
//
// Experiment ids (DESIGN.md §4):
//
//	table2    — per-phase Max/Avg time & flops (Table II)
//	table3    — single-device points-per-box sweep (Table III)
//	fig3      — strong scaling, uniform & nonuniform (Figure 3)
//	fig4      — weak scaling + setup:evaluation ratio (Figure 4)
//	fig5      — flops-per-rank variance (Figure 5)
//	fig6      — device weak scaling vs CPU-only (Figure 6)
//	alg3bound — Algorithm 3 traffic vs the m(3√p−2) bound
//	ablations — owner-based reduction and dense-M2L comparisons
package experiments

import (
	"fmt"
	"strings"
	"time"

	"kifmm/internal/diag"
	"kifmm/internal/geom"
	"kifmm/internal/kernel"
	"kifmm/internal/mpi"
	"kifmm/internal/parfmm"
)

// Options configures an experiment run. Zero values select scaled-down
// defaults that finish in seconds on a laptop.
type Options struct {
	// N is the global point count (strong scaling, GPU sweep).
	N int
	// PerRank is the per-rank point count (weak scaling).
	PerRank int
	// Ps are the rank counts to sweep (must be powers of two).
	Ps []int
	// Q is the points-per-box parameter.
	Q int
	// Workers bounds host parallelism per rank.
	Workers int
	// Seed fixes the particle distributions.
	Seed int64
}

func (o *Options) defaults() {
	if o.PerRank == 0 {
		o.PerRank = 4000
	}
	if len(o.Ps) == 0 {
		o.Ps = []int{1, 2, 4, 8}
	}
	if o.Q == 0 {
		o.Q = 50
	}
	if o.Workers == 0 {
		o.Workers = 2
	}
	if o.Seed == 0 {
		o.Seed = 2009
	}
}

// runDistributed evaluates the FMM for one (distribution, n, p)
// configuration and returns all per-rank results.
func runDistributed(dist geom.Distribution, n, p int, cfg parfmm.Config, seed int64) []*parfmm.Result {
	results := make([]*parfmm.Result, p)
	mpi.Run(p, func(c *mpi.Comm) {
		pts := geom.GenerateChunk(dist, n, seed, c.Rank(), p)
		den := make([]float64, len(pts)*cfg.Kern.SrcDim())
		for i := range den {
			den[i] = 1
		}
		results[c.Rank()] = parfmm.Evaluate(c, pts, den, cfg)
	})
	return results
}

// profiles extracts the per-rank profiles.
func profiles(results []*parfmm.Result) []*diag.Profile {
	out := make([]*diag.Profile, len(results))
	for i, r := range results {
		out[i] = r.Prof
	}
	return out
}

// maxAvg reduces one phase across ranks.
func maxAvg(results []*parfmm.Result, phase string) (mx, avg time.Duration) {
	var sum time.Duration
	for _, r := range results {
		t := r.Prof.Time(phase)
		if t > mx {
			mx = t
		}
		sum += t
	}
	return mx, sum / time.Duration(len(results))
}

// Modeled per-rank timing constants: the paper's sustained 0.5 GFlop/s per
// core plus Cray-SeaStar-like interconnect parameters. Measured wall-clock
// cannot exhibit p-rank scaling when all ranks share two physical cores, so
// the scaling studies report modeled per-rank times built from each rank's
// MEASURED flops and MEASURED communication volumes.
const (
	modelHostFlops = 0.5e9 // flop/s per rank
	modelNetBps    = 2e9   // bytes/s
	modelLatency   = 5e-6  // seconds/message
)

// ScalingPoint is one sweep point of a scaling study.
type ScalingPoint struct {
	P        int
	N        int
	SetupMax time.Duration
	SetupAvg time.Duration
	SortAvg  time.Duration
	EvalMax  time.Duration
	EvalAvg  time.Duration
	CommAvg  time.Duration
	// ModelEvalAvg/ModelEvalMax are per-rank modeled evaluation times
	// (measured flops at 0.5 GFlop/s + measured comm volume over the
	// modeled interconnect).
	ModelEvalAvg float64
	ModelEvalMax float64
	Efficiency   float64 // from modeled times, relative to the first point
	SetupFrac    float64 // setup time / evaluation time
	SortFrac     float64 // sort share of setup
	TotalFlops   int64
	MaxFlopRank  int64
}

func scalingPoint(results []*parfmm.Result, p, n int) ScalingPoint {
	sp := ScalingPoint{P: p, N: n}
	sp.SetupMax, sp.SetupAvg = maxAvg(results, diag.PhaseSetup)
	_, sp.SortAvg = maxAvg(results, diag.PhaseSort)
	sp.EvalMax, sp.EvalAvg = maxAvg(results, diag.PhaseTotalEval)
	_, sp.CommAvg = maxAvg(results, diag.PhaseComm)
	var modelSum float64
	for _, r := range results {
		f := r.Prof.Flops(diag.PhaseComp)
		sp.TotalFlops += f
		if f > sp.MaxFlopRank {
			sp.MaxFlopRank = f
		}
		model := float64(f)/modelHostFlops +
			float64(r.EvalCommBytes)/modelNetBps +
			float64(r.EvalCommMsgs)*modelLatency
		modelSum += model
		if model > sp.ModelEvalMax {
			sp.ModelEvalMax = model
		}
	}
	sp.ModelEvalAvg = modelSum / float64(len(results))
	if sp.EvalAvg > 0 {
		sp.SetupFrac = float64(sp.SetupAvg) / float64(sp.EvalAvg)
	}
	if sp.SetupAvg > 0 {
		sp.SortFrac = float64(sp.SortAvg) / float64(sp.SetupAvg)
	}
	return sp
}

func formatScaling(title string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%6s %10s %12s %12s %14s %14s %6s\n",
		"p", "N", "setup(avg)", "setup(max)", "eval(avg mdl)", "eval(max mdl)", "eff")
	for _, s := range pts {
		fmt.Fprintf(&b, "%6d %10d %12.3f %12.3f %14.3f %14.3f %6.2f\n",
			s.P, s.N, s.SetupAvg.Seconds(), s.SetupMax.Seconds(),
			s.ModelEvalAvg, s.ModelEvalMax, s.Efficiency)
	}
	return b.String()
}

func baseConfig(o Options, kern kernel.Kernel) parfmm.Config {
	return parfmm.Config{
		Kern:        kern,
		Q:           o.Q,
		SurfOrder:   6,
		Workers:     o.Workers,
		LoadBalance: true,
		UseFFTM2L:   true,
	}
}
