package experiments

import (
	"strings"
	"testing"
)

// tiny returns options small enough for unit testing.
func tiny() Options {
	return Options{PerRank: 1500, Ps: []int{1, 2, 4}, Q: 40, Workers: 2, N: 6000}
}

func TestFig3ShapeAndFormat(t *testing.T) {
	r := Fig3(tiny())
	if len(r.Uniform) != 3 || len(r.Nonuniform) != 3 {
		t.Fatalf("wrong sweep length")
	}
	// First point efficiency is 1 by construction.
	if r.Uniform[0].Efficiency < 0.999 {
		t.Fatalf("baseline efficiency %v", r.Uniform[0].Efficiency)
	}
	// Total flops must not explode with p (same global problem).
	f1, f4 := r.Uniform[0].TotalFlops, r.Uniform[2].TotalFlops
	if f4 > 3*f1 {
		t.Fatalf("strong-scaling flops grew too much: %d -> %d", f1, f4)
	}
	s := r.Format()
	for _, want := range []string{"Figure 3", "uniform", "nonuniform", "eval(avg mdl)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format missing %q:\n%s", want, s)
		}
	}
}

func TestFig4SetupSmallerThanEval(t *testing.T) {
	r := Fig4(tiny())
	for _, s := range r.Nonuniform {
		if s.SetupFrac > 3 {
			t.Fatalf("setup/eval ratio unreasonable: %v", s.SetupFrac)
		}
	}
	if r.EvalModel == nil || r.SetupModel == nil {
		t.Fatalf("models not fitted")
	}
	if !strings.Contains(r.Format(), "extrapolation") {
		t.Fatalf("missing extrapolation in format")
	}
}

func TestFig5NonuniformSpreadLarger(t *testing.T) {
	o := tiny()
	o.Ps = []int{4}
	r := Fig5(o)
	if len(r.UniformFlops[0]) != 4 || len(r.NonuniformFlops[1]) != 4 {
		t.Fatalf("wrong rank count")
	}
	// The unbalanced nonuniform run must be more skewed than the uniform
	// one, and balancing must improve (or preserve) it.
	if r.NonuniformSpread[0] <= r.UniformSpread[0] {
		t.Fatalf("nonuniform should be more imbalanced: %v vs %v",
			r.NonuniformSpread[0], r.UniformSpread[0])
	}
	if r.NonuniformSpread[1] > r.NonuniformSpread[0]+0.05 {
		t.Fatalf("balancing made things worse: %v -> %v",
			r.NonuniformSpread[0], r.NonuniformSpread[1])
	}
	if !strings.Contains(r.Format(), "Figure 5") {
		t.Fatalf("bad format")
	}
}

func TestTable2RowsPresent(t *testing.T) {
	o := tiny()
	o.Ps = []int{1, 2, 4}
	r := Table2(o)
	names := make(map[string]bool)
	for _, row := range r.Rows {
		names[row.Event] = true
	}
	for _, want := range []string{"Total eval", "Upward", "U-list", "V-list", "Downward", "Comm.", "Comp"} {
		if !names[want] {
			t.Fatalf("Table II missing row %q (have %v)", want, names)
		}
	}
	if r.PaperEvalS == 0 {
		t.Fatalf("no paper-scale extrapolation")
	}
	if !strings.Contains(r.Format(), "Table II") {
		t.Fatalf("bad format")
	}
}

func TestTable3QSweepShape(t *testing.T) {
	o := tiny()
	o.N = 30000
	r := Table3(o)
	if len(r.Rows) != 3 {
		t.Fatalf("expected 3 q values")
	}
	// Scale-robust parts of the paper's shape: the U-list share grows with
	// q while the V-list cost shrinks (the full interior optimum at q=244
	// needs the paper's 1M-point scale; see EXPERIMENTS.md).
	if !(r.Rows[0].UList < r.Rows[2].UList) {
		t.Fatalf("U-list should grow with q: %+v", r.Rows)
	}
	if !(r.Rows[0].VList > r.Rows[2].VList) {
		t.Fatalf("V-list should shrink with q: %+v", r.Rows)
	}
	if !(r.Rows[1].VList < r.Rows[0].VList) {
		t.Fatalf("V-list should already shrink at the middle q: %+v", r.Rows)
	}
	if !strings.Contains(r.Format(), "Table III") {
		t.Fatalf("bad format")
	}
}

func TestFig6SpeedupShape(t *testing.T) {
	o := Options{PerRank: 8000, Ps: []int{1, 2}, Workers: 2}
	r := Fig6(o)
	if len(r.Points) != 2 {
		t.Fatalf("wrong sweep")
	}
	for _, pt := range r.Points {
		// The paper sustains ≈25×; accept a broad but decisive window.
		if pt.Speedup < 5 || pt.Speedup > 300 {
			t.Fatalf("modeled speedup out of range: %+v", pt)
		}
	}
	if !strings.Contains(r.Format(), "Figure 6") {
		t.Fatalf("bad format")
	}
}

func TestAlg3BoundHolds(t *testing.T) {
	o := tiny()
	o.Ps = []int{4, 8}
	r := Alg3Bound(o)
	if len(r.Points) != 2 {
		t.Fatalf("wrong sweep")
	}
	for _, pt := range r.Points {
		if float64(pt.MaxSent) > pt.Bound {
			t.Fatalf("traffic above bound: %+v", pt)
		}
		if pt.HypercubeMsgs >= pt.OwnerMaxMsgs {
			t.Fatalf("hypercube should use fewer messages than the owner fan-out: %+v", pt)
		}
	}
	if !strings.Contains(r.Format(), "Algorithm 3") {
		t.Fatalf("bad format")
	}
}

func TestAblationsRun(t *testing.T) {
	o := tiny()
	o.Ps = []int{1, 2}
	r := Ablations(o)
	if r.HypercubeEval <= 0 || r.OwnerEval <= 0 {
		t.Fatalf("reduction ablation missing timings: %+v", r)
	}
	if r.DenseM2LTime <= 0 || r.FFTM2LTime <= 0 {
		t.Fatalf("M2L ablation missing timings")
	}
	if !strings.Contains(r.Format(), "Ablations") {
		t.Fatalf("bad format")
	}
}
