package experiments

import (
	"fmt"
	"strings"
	"time"

	"kifmm/internal/diag"
	"kifmm/internal/dtree"
	"kifmm/internal/geom"
	"kifmm/internal/kernel"
	"kifmm/internal/kifmm"
	"kifmm/internal/mpi"
	"kifmm/internal/octree"
	"kifmm/internal/reduce"
)

// ones returns a vector of n ones.
func ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Alg3Point is one rank-count sample of the reduce-scatter traffic study.
type Alg3Point struct {
	P int
	// M is the largest per-rank shared-octant count (the paper's m).
	M int
	// MaxSent is the worst rank's total octant records sent (hypercube).
	MaxSent int
	// Bound is the paper's m(3√p−2).
	Bound float64
	// OwnerMaxSent is the worst rank's octant records in the owner-based
	// baseline.
	OwnerMaxSent int
	// OwnerMaxMsgs is the worst rank's message count in the baseline (the
	// O(p) fan-out that failed at 64K ranks).
	OwnerMaxMsgs int
	// HypercubeMsgs is the per-rank message count, always log p.
	HypercubeMsgs int
}

// Alg3Result verifies Algorithm 3's communication bound experimentally and
// contrasts it with the owner-based baseline.
type Alg3Result struct {
	Points []Alg3Point
}

// Alg3Bound runs the traffic study across rank counts.
func Alg3Bound(o Options) *Alg3Result {
	o.defaults()
	res := &Alg3Result{}
	for _, p := range o.Ps {
		if p&(p-1) != 0 {
			continue
		}
		n := o.PerRank * p
		dts := make([]*dtree.DistTree, p)
		items := make([][]reduce.Item, p)
		mpi.Run(p, func(c *mpi.Comm) {
			pts := geom.GenerateChunk(geom.Uniform, n, o.Seed, c.Rank(), p)
			leaves := dtree.Points2Octree(c, pts, nil, 0, o.Q, 24, nil)
			dts[c.Rank()] = dtree.BuildLET(c, leaves)
		})
		pt := Alg3Point{P: p}
		for r := 0; r < p; r++ {
			shared := dts[r].SharedOctants()
			if len(shared) > pt.M {
				pt.M = len(shared)
			}
			for _, i := range shared {
				node := &dts[r].Tree.Nodes[i]
				if !node.Local {
					continue
				}
				items[r] = append(items[r], reduce.Item{Key: node.Key, U: []float64{1}})
			}
		}
		hcStats := make([]reduce.Stats, p)
		mpi.Run(p, func(c *mpi.Comm) {
			_, st := reduce.Hypercube(c, dts[c.Rank()].Part, items[c.Rank()], 1)
			hcStats[c.Rank()] = st
		})
		owStats := make([]reduce.Stats, p)
		mpi.Run(p, func(c *mpi.Comm) {
			_, st := reduce.Owner(c, dts[c.Rank()].Part, items[c.Rank()], 1)
			owStats[c.Rank()] = st
		})
		for r := 0; r < p; r++ {
			if hcStats[r].OctantsSentTotal > pt.MaxSent {
				pt.MaxSent = hcStats[r].OctantsSentTotal
			}
			if owStats[r].OctantsSentTotal > pt.OwnerMaxSent {
				pt.OwnerMaxSent = owStats[r].OctantsSentTotal
			}
			if owStats[r].MessagesSent > pt.OwnerMaxMsgs {
				pt.OwnerMaxMsgs = owStats[r].MessagesSent
			}
			pt.HypercubeMsgs = hcStats[r].MessagesSent
		}
		pt.Bound = reduce.Bound(pt.M, p)
		res.Points = append(res.Points, pt)
	}
	return res
}

// Format renders the bound verification table.
func (r *Alg3Result) Format() string {
	var b strings.Builder
	b.WriteString("Algorithm 3 traffic vs the m(3√p−2) bound (octant records, worst rank)\n")
	fmt.Fprintf(&b, "%6s %8s %10s %10s %12s %10s %10s\n",
		"p", "m", "hc sent", "bound", "owner sent", "hc msgs", "owner msgs")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%6d %8d %10d %10.0f %12d %10d %10d\n",
			pt.P, pt.M, pt.MaxSent, pt.Bound, pt.OwnerMaxSent, pt.HypercubeMsgs, pt.OwnerMaxMsgs)
	}
	return b.String()
}

// AblationResult compares retired design choices against the paper's:
// owner-based vs hypercube reduction (end-to-end evaluation time) and dense
// vs FFT-diagonalized M2L (sequential V-list time).
type AblationResult struct {
	P             int
	HypercubeEval time.Duration
	OwnerEval     time.Duration
	DenseM2LTime  time.Duration
	FFTM2LTime    time.Duration
	DenseM2LFlops int64
	FFTM2LFlops   int64
	// Tree-construction ablation: worst-rank traffic of the LET exchange
	// vs the retired replicated-global-tree approach.
	LETBytes        int64
	ReplicatedBytes int64
	LETTime         time.Duration
	ReplicatedTime  time.Duration
}

// Ablations runs both comparisons.
func Ablations(o Options) *AblationResult {
	o.defaults()
	p := o.Ps[len(o.Ps)-1]
	n := o.PerRank * p
	res := &AblationResult{P: p}

	for _, owner := range []bool{false, true} {
		cfg := baseConfig(o, kernel.Laplace{})
		cfg.UseOwnerReduce = owner
		results := runDistributed(geom.Uniform, n, p, cfg, o.Seed)
		_, avg := maxAvg(results, diag.PhaseTotalEval)
		if owner {
			res.OwnerEval = avg
		} else {
			res.HypercubeEval = avg
		}
	}

	// Tree construction ablation: LET vs replicated global tree.
	{
		n := o.PerRank * p
		chunks := make([][]dtree.Leaf, p)
		mpi.Run(p, func(c *mpi.Comm) {
			pts := geom.GenerateChunk(geom.Uniform, n, o.Seed, c.Rank(), p)
			chunks[c.Rank()] = dtree.Points2Octree(c, pts, nil, 0, o.Q, 24, nil)
		})
		letBytes := make([]int64, p)
		repBytes := make([]int64, p)
		t0 := time.Now()
		mpi.Run(p, func(c *mpi.Comm) {
			before := c.Stats().Snap()
			dtree.BuildLET(c, chunks[c.Rank()])
			letBytes[c.Rank()] = before.Delta(c.Stats().Snap()).Bytes
		})
		res.LETTime = time.Since(t0)
		t0 = time.Now()
		mpi.Run(p, func(c *mpi.Comm) {
			_, tr := dtree.BuildReplicated(c, chunks[c.Rank()])
			repBytes[c.Rank()] = tr
		})
		res.ReplicatedTime = time.Since(t0)
		for r := 0; r < p; r++ {
			if letBytes[r] > res.LETBytes {
				res.LETBytes = letBytes[r]
			}
			if repBytes[r] > res.ReplicatedBytes {
				res.ReplicatedBytes = repBytes[r]
			}
		}
	}

	// Sequential M2L ablation.
	pts := geom.Generate(geom.Uniform, o.PerRank*4, o.Seed)
	tr := octree.Build(pts, o.Q, 20)
	tr.BuildLists(nil)
	ops := kifmm.NewOperators(kernel.Laplace{}, 6, 1e-9)
	for _, useFFT := range []bool{false, true} {
		e := kifmm.NewEngine(ops, tr)
		e.Workers = o.Workers
		e.UseFFTM2L = useFFT
		e.Prof = diag.NewProfile()
		e.SetPointDensities(ones(len(pts)))
		e.S2U()
		e.U2U()
		t0 := time.Now()
		e.VLI()
		d := time.Since(t0)
		if useFFT {
			res.FFTM2LTime = d
			res.FFTM2LFlops = e.Prof.Flops(diag.PhaseVList)
		} else {
			res.DenseM2LTime = d
			res.DenseM2LFlops = e.Prof.Flops(diag.PhaseVList)
		}
	}
	return res
}

// Format renders the ablation summary.
func (r *AblationResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablations (p=%d)\n", r.P)
	fmt.Fprintf(&b, "reduction scheme: hypercube eval %.3f s vs owner-based %.3f s\n",
		r.HypercubeEval.Seconds(), r.OwnerEval.Seconds())
	fmt.Fprintf(&b, "V-list translation: dense %.3f s (%d flops) vs FFT %.3f s (%d flops)\n",
		r.DenseM2LTime.Seconds(), r.DenseM2LFlops, r.FFTM2LTime.Seconds(), r.FFTM2LFlops)
	fmt.Fprintf(&b, "tree construction traffic (worst rank): LET %d B in %.3f s vs replicated %d B in %.3f s\n",
		r.LETBytes, r.LETTime.Seconds(), r.ReplicatedBytes, r.ReplicatedTime.Seconds())
	return b.String()
}
