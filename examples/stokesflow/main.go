// Stokesflow: the paper's target application class — viscous flow. A cloud
// of sedimenting particles exerts downward point forces on the fluid; the
// induced velocity field is the Stokes single-layer sum (three components
// per point), evaluated with the distributed FMM.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kifmm"
)

func main() {
	const (
		n     = 8000
		ranks = 4
	)
	// A spherical cloud of particles in the middle of the unit cube, each
	// applying a downward force (sedimentation).
	rng := rand.New(rand.NewSource(11))
	points := make([]kifmm.Point, n)
	forces := make([]float64, 3*n)
	for i := range points {
		for {
			x, y, z := rng.Float64()*2-1, rng.Float64()*2-1, rng.Float64()*2-1
			if x*x+y*y+z*z <= 1 {
				points[i] = kifmm.Point{X: 0.5 + 0.2*x, Y: 0.5 + 0.2*y, Z: 0.5 + 0.2*z}
				break
			}
		}
		forces[3*i+2] = -1.0 / n // F_z
	}

	solver, err := kifmm.New(kifmm.Options{
		Kernel:       kifmm.Stokes,
		PointsPerBox: 60,
		Order:        4,
		Workers:      4,
	})
	if err != nil {
		log.Fatal(err)
	}
	vel, err := solver.EvaluateDistributed(ranks, points, forces)
	if err != nil {
		log.Fatal(err)
	}

	// The classic collective effect: the cloud falls faster than an
	// isolated particle, and interior particles fall fastest.
	var center, rim float64
	var nc, nr int
	for i, p := range points {
		r := math.Hypot(math.Hypot(p.X-0.5, p.Y-0.5), p.Z-0.5)
		vz := vel[3*i+2]
		if r < 0.08 {
			center += vz
			nc++
		}
		if r > 0.17 {
			rim += vz
			nr++
		}
	}
	center /= float64(nc)
	rim /= float64(nr)
	fmt.Printf("sedimenting cloud: %d Stokeslets on %d ranks\n", n, ranks)
	fmt.Printf("mean settling velocity, cloud core: %.5f (n=%d)\n", center, nc)
	fmt.Printf("mean settling velocity, cloud rim:  %.5f (n=%d)\n", rim, nr)
	if center < rim {
		fmt.Println("core falls faster than rim, as expected for a sedimenting cloud")
	}

	// Validate one velocity against the direct sum.
	i := 0
	var exact [3]float64
	for j := range points {
		if j == i {
			continue
		}
		dx := points[i].X - points[j].X
		dy := points[i].Y - points[j].Y
		dz := points[i].Z - points[j].Z
		r2 := dx*dx + dy*dy + dz*dz
		r := math.Sqrt(r2)
		fz := forces[3*j+2]
		dot := dz * fz
		exact[0] += (dx * dot / (r2 * r)) / (8 * math.Pi)
		exact[1] += (dy * dot / (r2 * r)) / (8 * math.Pi)
		exact[2] += (fz/r + dz*dot/(r2*r)) / (8 * math.Pi)
	}
	fmt.Printf("spot check u_z: fmm %.6f vs exact %.6f\n", vel[3*i+2], exact[2])
}
