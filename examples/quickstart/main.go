// Quickstart: evaluate the electrostatic potential of N random unit charges
// with the FMM and check it against the exact O(N²) sum.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"kifmm"
)

func main() {
	const n = 50000
	rng := rand.New(rand.NewSource(1))
	points := make([]kifmm.Point, n)
	charges := make([]float64, n)
	for i := range points {
		points[i] = kifmm.Point{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		charges[i] = rng.NormFloat64()
	}

	solver, err := kifmm.New(kifmm.Options{
		Kernel:       kifmm.Laplace,
		PointsPerBox: 60,
		Order:        6,
		Workers:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	t0 := time.Now()
	potentials, err := solver.Evaluate(points, charges)
	if err != nil {
		log.Fatal(err)
	}
	fmmTime := time.Since(t0)

	// Validate a random subset against the exact sum.
	const sample = 200
	var num, den float64
	t0 = time.Now()
	for s := 0; s < sample; s++ {
		i := rng.Intn(n)
		var exact float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := points[i].X - points[j].X
			dy := points[i].Y - points[j].Y
			dz := points[i].Z - points[j].Z
			exact += charges[j] / (4 * math.Pi * math.Sqrt(dx*dx+dy*dy+dz*dz))
		}
		d := potentials[i] - exact
		num += d * d
		den += exact * exact
	}
	directTime := time.Since(t0) * time.Duration(n) / time.Duration(sample)

	fmt.Printf("N = %d charges\n", n)
	fmt.Printf("FMM evaluation:     %v\n", fmmTime)
	fmt.Printf("direct (projected): %v\n", directTime)
	fmt.Printf("sampled relative L2 error: %.2e\n", math.Sqrt(num/den))
}
