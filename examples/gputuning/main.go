// Gputuning: the paper's single-device autotuning study (Table III). Sweeps
// the points-per-box parameter q on the simulated streaming device and
// reports the modeled per-phase times: small q shifts work into the
// memory-bound V-list, large q into the compute-bound U-list, and the
// production value sits between them.
package main

import (
	"flag"
	"fmt"

	"kifmm/internal/experiments"
)

func main() {
	n := flag.Int("n", 200000, "point count (the paper uses 1M)")
	workers := flag.Int("workers", 4, "host workers driving the device simulation")
	flag.Parse()

	res := experiments.Table3(experiments.Options{N: *n, Workers: *workers})
	fmt.Println(res.Format())

	best := res.Rows[0]
	for _, r := range res.Rows[1:] {
		if r.Total < best.Total {
			best = r
		}
	}
	fmt.Printf("best q for this device model: %d (%.3f s modeled)\n", best.Q, best.Total)
	fmt.Println("this sweep is the tuning pass the paper folds into an autotuner")
}
