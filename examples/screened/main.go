// Screened: Debye-screened electrostatics (Yukawa kernel) in a plasma-like
// charge cloud. The Yukawa kernel is non-oscillatory but NOT
// scale-invariant, so this example exercises the solver's per-level
// operator tables — beyond the two homogeneous kernels of the paper — and
// sweeps the surface order to show the accuracy/cost trade-off.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"kifmm"
)

func main() {
	const (
		n      = 10000
		lambda = 10.0 // inverse Debye length (unit-cube units)
	)
	rng := rand.New(rand.NewSource(3))
	points := make([]kifmm.Point, n)
	charges := make([]float64, n)
	for i := range points {
		points[i] = kifmm.Point{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		if i%2 == 0 {
			charges[i] = 1.0 / n
		} else {
			charges[i] = -1.0 / n // overall neutral plasma
		}
	}

	fmt.Printf("Debye-screened plasma: %d charges, λ = %.0f\n", n, lambda)
	fmt.Printf("%6s %12s %14s\n", "order", "time", "rel error")
	for _, order := range []int{3, 4, 6} {
		solver, err := kifmm.New(kifmm.Options{
			Kernel:       kifmm.Yukawa,
			YukawaLambda: lambda,
			Order:        order,
			PointsPerBox: 50,
			Workers:      4,
		})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		potentials, err := solver.Evaluate(points, charges)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(t0)

		// Sampled error against the exact screened sum.
		var num, den float64
		for s := 0; s < 100; s++ {
			i := rng.Intn(n)
			var exact float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dx := points[i].X - points[j].X
				dy := points[i].Y - points[j].Y
				dz := points[i].Z - points[j].Z
				r := math.Sqrt(dx*dx + dy*dy + dz*dz)
				exact += charges[j] * math.Exp(-lambda*r) / (4 * math.Pi * r)
			}
			d := potentials[i] - exact
			num += d * d
			den += exact * exact
		}
		fmt.Printf("%6d %12v %14.2e\n", order, elapsed.Round(time.Millisecond), math.Sqrt(num/den))
	}
	fmt.Println("screening makes the far field decay exponentially; the FMM")
	fmt.Println("builds per-level operators because the kernel has a length scale")
}
