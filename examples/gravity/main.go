// Gravity: the paper's highly nonuniform workload — point masses on the
// surface of a 1:1:4 ellipsoid with uniform angular spacing, which clusters
// points at the poles and drives the adaptive octree through many levels.
// Evaluates the gravitational potential distributed over in-process ranks
// and reports the tree's adaptivity.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"kifmm"
)

func main() {
	const (
		n     = 40000
		ranks = 4
	)
	// The 1:1:4 ellipsoid fits inside the unit cube; uniform θ/φ sampling
	// concentrates mass at the poles (the paper's nonuniform distribution).
	rng := rand.New(rand.NewSource(7))
	const a, b, c = 0.115, 0.115, 0.46
	points := make([]kifmm.Point, n)
	masses := make([]float64, n)
	for i := range points {
		theta := rng.Float64() * math.Pi
		phi := rng.Float64() * 2 * math.Pi
		st, ct := math.Sincos(theta)
		sp, cp := math.Sincos(phi)
		points[i] = kifmm.Point{
			X: 0.5 + a*st*cp,
			Y: 0.5 + b*st*sp,
			Z: 0.5 + c*ct,
		}
		masses[i] = 1.0 / n
	}

	solver, err := kifmm.New(kifmm.Options{
		Kernel:       kifmm.Laplace,
		PointsPerBox: 40,
		Order:        6,
		Workers:      4,
	})
	if err != nil {
		log.Fatal(err)
	}

	potentials, err := solver.EvaluateDistributed(ranks, points, masses)
	if err != nil {
		log.Fatal(err)
	}

	// The deepest potential well sits where the mass clusters: at a pole.
	minIdx, maxIdx := 0, 0
	for i, v := range potentials {
		if v > potentials[maxIdx] {
			maxIdx = i
		}
		if v < potentials[minIdx] {
			minIdx = i
		}
	}
	fmt.Printf("galaxy of %d masses on a 1:1:4 ellipsoid, %d ranks\n", n, ranks)
	fmt.Printf("strongest potential %.4f at (%.3f, %.3f, %.3f) |z-0.5| = %.3f\n",
		potentials[maxIdx], points[maxIdx].X, points[maxIdx].Y, points[maxIdx].Z,
		math.Abs(points[maxIdx].Z-0.5))
	fmt.Printf("weakest potential  %.4f at (%.3f, %.3f, %.3f)\n",
		potentials[minIdx], points[minIdx].X, points[minIdx].Y, points[minIdx].Z)

	// Spot-check against the exact sum.
	exact := 0.0
	for j := range points {
		if j == maxIdx {
			continue
		}
		dx := points[maxIdx].X - points[j].X
		dy := points[maxIdx].Y - points[j].Y
		dz := points[maxIdx].Z - points[j].Z
		exact += masses[j] / (4 * math.Pi * math.Sqrt(dx*dx+dy*dy+dz*dz))
	}
	fmt.Printf("spot check: fmm %.6f vs exact %.6f (rel %.1e)\n",
		potentials[maxIdx], exact, math.Abs(potentials[maxIdx]-exact)/math.Abs(exact))
}
