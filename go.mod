module kifmm

go 1.24
