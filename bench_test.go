package kifmm

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (scaled to laptop size; see EXPERIMENTS.md for the
// recorded full-size runs and the paper-vs-measured comparison), plus
// microbenchmarks of the load-bearing kernels. Run with:
//
//	go test -bench=. -benchmem
//
// Larger reproductions: go run ./cmd/fmmbench -exp <id> [flags].

import (
	"math/rand"
	"runtime"
	"testing"

	"kifmm/internal/experiments"
	"kifmm/internal/geom"
	ikern "kifmm/internal/kernel"
	ikifmm "kifmm/internal/kifmm"
	"kifmm/internal/octree"
)

// benchOpts keeps the experiment benchmarks in the seconds range.
func benchOpts() experiments.Options {
	return experiments.Options{PerRank: 2000, Ps: []int{1, 2, 4}, Q: 40, Workers: 2, N: 8000}
}

func BenchmarkTable2_PhaseBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(benchOpts())
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

func BenchmarkTable3_GPUQSweep(b *testing.B) {
	o := benchOpts()
	o.N = 30000
	for i := 0; i < b.N; i++ {
		r := experiments.Table3(o)
		if len(r.Rows) != 3 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkFig3_StrongScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(benchOpts())
		if len(r.Uniform) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig4_WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(benchOpts())
		if len(r.Nonuniform) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig5_FlopVariance(b *testing.B) {
	o := benchOpts()
	o.Ps = []int{4}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig5(o)
		if len(r.UniformFlops[0]) != 4 || len(r.UniformFlops[1]) != 4 {
			b.Fatal("bad ranks")
		}
	}
}

func BenchmarkFig6_GPUWeakScaling(b *testing.B) {
	o := experiments.Options{PerRank: 6000, Ps: []int{1, 2}, Workers: 2}
	for i := 0; i < b.N; i++ {
		r := experiments.Fig6(o)
		if len(r.Points) != 2 {
			b.Fatal("bad sweep")
		}
	}
}

func BenchmarkAlg3_TrafficBound(b *testing.B) {
	o := benchOpts()
	o.Ps = []int{4, 8}
	for i := 0; i < b.N; i++ {
		r := experiments.Alg3Bound(o)
		for _, pt := range r.Points {
			if float64(pt.MaxSent) > pt.Bound {
				b.Fatalf("bound violated: %+v", pt)
			}
		}
	}
}

func BenchmarkAblation_ReduceAndM2L(b *testing.B) {
	o := benchOpts()
	o.Ps = []int{1, 2}
	for i := 0; i < b.N; i++ {
		r := experiments.Ablations(o)
		if r.HypercubeEval <= 0 {
			b.Fatal("no timing")
		}
	}
}

// ---- Microbenchmarks of the building blocks. ----

func benchPoints(n int) ([]Point, []float64) {
	rng := rand.New(rand.NewSource(42))
	pts := make([]Point, n)
	den := make([]float64, n)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64(), rng.Float64()}
		den[i] = rng.NormFloat64()
	}
	return pts, den
}

func BenchmarkSequentialEvaluate_10k(b *testing.B) {
	f, err := New(Options{PointsPerBox: 50, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	pts, den := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(pts, den); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDistributedEvaluate_10k_p4(b *testing.B) {
	f, err := New(Options{PointsPerBox: 50, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	pts, den := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.EvaluateDistributed(4, pts, den); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAcceleratedEvaluate_10k(b *testing.B) {
	f, err := New(Options{PointsPerBox: 100, Workers: 2, Accelerated: true})
	if err != nil {
		b.Fatal(err)
	}
	pts, den := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(pts, den); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateReplan and BenchmarkPlanApply bracket the plan-reuse win
// that fmmserve's plan cache banks: Evaluate rebuilds the octree, the
// interaction lists, and the engine every call; Plan.Apply reuses them and
// pays only the density-dependent phases (the iterative-solver pattern).
// BenchmarkColdStartEvaluate additionally pays the translation-operator
// precompute — the full cost of a plan-cache miss in fmmserve.

func BenchmarkColdStartEvaluate_10k(b *testing.B) {
	pts, den := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := New(Options{PointsPerBox: 50, Workers: 2})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Evaluate(pts, den); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluateReplan_10k(b *testing.B) {
	f, err := New(Options{PointsPerBox: 50, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	pts, den := benchPoints(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Evaluate(pts, den); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanApply_10k(b *testing.B) {
	f, err := New(Options{PointsPerBox: 50, Workers: 2})
	if err != nil {
		b.Fatal(err)
	}
	pts, den := benchPoints(10000)
	plan, err := f.Plan(pts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.Apply(den); err != nil { // warm the lazy FFT spectra
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Apply(den); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkApplyBarrier / BenchmarkApplyDAG compare the two execution
// strategies for the density-dependent phases on the paper's nonuniform
// ellipsoid distribution (deep adaptive tree, unbalanced per-level work —
// the case where global phase barriers hurt most). Both reuse one plan and
// produce bit-identical potentials; see TestExecModesBitIdentical.

func benchmarkApplyExec(b *testing.B, mode ExecMode) {
	f, err := New(Options{PointsPerBox: 50, Workers: runtime.GOMAXPROCS(0), Exec: mode})
	if err != nil {
		b.Fatal(err)
	}
	gp := geom.Generate(geom.Ellipsoid, 30000, 7)
	pts := make([]Point, len(gp))
	for i, p := range gp {
		pts[i] = Point{p.X, p.Y, p.Z}
	}
	rng := rand.New(rand.NewSource(8))
	den := make([]float64, len(pts))
	for i := range den {
		den[i] = rng.NormFloat64()
	}
	plan, err := f.Plan(pts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := plan.Apply(den); err != nil { // warm the lazy FFT spectra
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Apply(den); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkApplyBarrier(b *testing.B) { benchmarkApplyExec(b, ExecBarrier) }

func BenchmarkApplyDAG(b *testing.B) { benchmarkApplyExec(b, ExecDAG) }

func BenchmarkOctreeBuild_50k(b *testing.B) {
	pts := geom.Generate(geom.Ellipsoid, 50000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := octree.Build(pts, 50, 24)
		if len(tr.Leaves) == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkInteractionLists_20k(b *testing.B) {
	pts := geom.Generate(geom.Ellipsoid, 20000, 1)
	tr := octree.Build(pts, 30, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.BuildLists(nil)
	}
}

func BenchmarkM2LDense(b *testing.B) {
	ops := ikifmm.NewOperators(ikern.Laplace{}, 6, 1e-9)
	m := ops.M2L(2, 1, 0)
	u := make([]float64, ops.UpwardLen())
	out := make([]float64, ops.CheckLen())
	for i := range u {
		u[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(out, u)
	}
}

func BenchmarkM2LFFTHadamard(b *testing.B) {
	ops := ikifmm.NewOperators(ikern.Laplace{}, 6, 1e-9)
	f := ikifmm.NewFFTM2L(ops)
	u := make([]float64, ops.UpwardLen())
	for i := range u {
		u[i] = float64(i)
	}
	src := f.SourceSpectrum(u)
	tf := f.Translation(2, 1, 0)
	acc := make([]float64, f.AccLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ikifmm.Hadamard(acc, tf, src, 1, 1, f.HalfLen())
	}
}

func BenchmarkDirectSum_2k(b *testing.B) {
	gp := geom.Generate(geom.Uniform, 2000, 3)
	den := make([]float64, 2000)
	for i := range den {
		den[i] = 1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ikern.Direct(ikern.Laplace{}, gp, gp, den)
	}
}
