// Command fmmvet is the project's static-analysis suite: eight analyzers
// enforcing the determinism, hot-path allocation, and concurrency
// invariants the FMM engine depends on. Since v2 the suite is
// interprocedural: a whole-program call graph propagates //fmm:hotpath and
// //fmm:deterministic scope across package boundaries (//fmm:coldcall stops
// it at deliberate slow-path edges), the compiler's escape/inlining
// decisions for the hot closure are diffed against escape_baseline.txt, and
// a lock-order analyzer reports acquisition cycles as potential deadlocks.
//
// Run standalone (whole-program: callgraph propagation + lockorder +
// escape):
//
//	go run ./cmd/fmmvet [-json] [-write-escape-baseline] ./...
//
// or as a vet tool (cached by the go build cache, used by `make lint`;
// propagation crosses packages via vet facts, escape runs standalone-only):
//
//	go build -o bin/fmmvet ./cmd/fmmvet
//	go vet -vettool=bin/fmmvet ./...
//
// See DESIGN.md §7.5 for the annotation grammar (//fmm:hotpath,
// //fmm:deterministic, //fmm:allow, //fmm:coldcall), §7.9 for the call
// graph, escape baseline, and lock-order model, and each analyzer's package
// doc for its rationale.
package main

import (
	"os"

	"kifmm/internal/analysis"
	"kifmm/internal/analysis/diagbatch"
	"kifmm/internal/analysis/escape"
	"kifmm/internal/analysis/hotalloc"
	"kifmm/internal/analysis/lockorder"
	"kifmm/internal/analysis/locksafe"
	"kifmm/internal/analysis/mapiter"
	"kifmm/internal/analysis/nodeterm"
)

func main() {
	body := []*analysis.Analyzer{
		mapiter.Analyzer,
		hotalloc.Analyzer,
		diagbatch.Analyzer,
		nodeterm.Analyzer,
		locksafe.Analyzer,
	}
	globals := func(opts analysis.MainOptions, patterns []string) []*analysis.GlobalAnalyzer {
		return []*analysis.GlobalAnalyzer{
			lockorder.Analyzer,
			escape.New(escape.Config{
				BaselinePath: opts.EscapeBaseline,
				Write:        opts.WriteEscapeBaseline,
				Patterns:     patterns,
			}),
		}
	}
	os.Exit(analysis.Main(body, globals))
}
