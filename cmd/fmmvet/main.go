// Command fmmvet is the project's static-analysis suite: five analyzers
// enforcing the determinism, hot-path allocation, and concurrency
// invariants the FMM engine depends on.
//
// Run standalone:
//
//	go run ./cmd/fmmvet ./...
//
// or as a vet tool (cached by the go build cache, used by `make lint`):
//
//	go build -o bin/fmmvet ./cmd/fmmvet
//	go vet -vettool=bin/fmmvet ./...
//
// See DESIGN.md §7.5 for the annotation grammar (//fmm:hotpath,
// //fmm:deterministic, //fmm:allow) and each analyzer's package doc for its
// rationale.
package main

import (
	"os"

	"kifmm/internal/analysis"
	"kifmm/internal/analysis/diagbatch"
	"kifmm/internal/analysis/hotalloc"
	"kifmm/internal/analysis/locksafe"
	"kifmm/internal/analysis/mapiter"
	"kifmm/internal/analysis/nodeterm"
)

func main() {
	os.Exit(analysis.Main([]*analysis.Analyzer{
		mapiter.Analyzer,
		hotalloc.Analyzer,
		diagbatch.Analyzer,
		nodeterm.Analyzer,
		locksafe.Analyzer,
	}))
}
