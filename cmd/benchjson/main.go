// Command benchjson runs a benchmark pattern under `go test -bench` and
// writes the parsed results as JSON, so CI runs and EXPERIMENTS.md tables
// come from the same machine-readable artifact instead of hand-copied
// console output.
//
// Usage:
//
//	benchjson [-pkg ./internal/kifmm/] [-bench BenchmarkVList] \
//	          [-benchtime 3x] [-count 1] [-o BENCH_vlist.json]
//
// The output maps each sub-benchmark name to its ns/op, B/op, and allocs/op
// plus the environment header (goos/goarch/cpu/pkg) of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
)

// Result is one benchmark line of `go test -bench -benchmem` output.
type Result struct {
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the JSON document benchjson writes.
type Report struct {
	Package    string            `json:"package"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Bench      string            `json:"bench"`
	Benchtime  string            `json:"benchtime"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	pkg := flag.String("pkg", "./internal/kifmm/", "package to benchmark")
	bench := flag.String("bench", "BenchmarkVList", "benchmark regexp passed to -bench")
	benchtime := flag.String("benchtime", "3x", "value passed to -benchtime")
	count := flag.Int("count", 1, "value passed to -count")
	out := flag.String("o", "BENCH_vlist.json", "output file (- for stdout)")
	flag.Parse()

	args := []string{
		"test", *pkg, "-run", "^$",
		"-bench", *bench, "-benchmem",
		"-benchtime", *benchtime,
		"-count", strconv.Itoa(*count),
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n%s", strings.Join(args, " "), err, raw)
		os.Exit(1)
	}

	rep := Report{Bench: *bench, Benchtime: *benchtime, Benchmarks: map[string]Result{}}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			name, res, ok := parseBenchLine(line)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: skipping unparsable line: %s\n", line)
				continue
			}
			// With -count > 1 keep the fastest run, the usual noise floor.
			if prev, seen := rep.Benchmarks[name]; !seen || res.NsPerOp < prev.NsPerOp {
				rep.Benchmarks[name] = res
			}
		}
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no benchmark lines matched %q\n%s", *bench, raw)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

// parseBenchLine parses one "BenchmarkName-8  3  648600744 ns/op  1769626
// B/op  10524 allocs/op" line. The -cpu suffix is stripped from the name.
func parseBenchLine(line string) (string, Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || fields[3] != "ns/op" {
		return "", Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var res Result
	var err error
	if res.Iterations, err = strconv.Atoi(fields[1]); err != nil {
		return "", Result{}, false
	}
	if res.NsPerOp, err = strconv.ParseFloat(fields[2], 64); err != nil {
		return "", Result{}, false
	}
	for i := 4; i+1 < len(fields); i += 2 {
		v, verr := strconv.ParseInt(fields[i], 10, 64)
		if verr != nil {
			continue
		}
		switch fields[i+1] {
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		}
	}
	return name, res, true
}
