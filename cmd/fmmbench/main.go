// Command fmmbench regenerates the paper's tables and figures at a chosen
// scale. Each experiment id corresponds to one table or figure of the
// evaluation section (see DESIGN.md §4 and EXPERIMENTS.md):
//
//	fmmbench -exp table2                # Table II phase breakdown
//	fmmbench -exp table3 -n 1000000     # Table III GPU q sweep
//	fmmbench -exp fig3 -n 200000        # strong scaling
//	fmmbench -exp fig4 -perrank 25000   # weak scaling
//	fmmbench -exp fig5                  # flop variance across ranks
//	fmmbench -exp fig6 -perrank 100000  # GPU weak scaling
//	fmmbench -exp alg3bound             # reduce-scatter traffic bound
//	fmmbench -exp ablations             # retired-design comparisons
//	fmmbench -exp all                   # everything
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"kifmm/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id: table2,table3,fig3,fig4,fig5,fig6,alg3bound,ablations,all")
		n       = flag.Int("n", 0, "global point count (strong-scaling experiments; 0 = default)")
		perRank = flag.Int("perrank", 0, "points per rank (weak-scaling experiments; 0 = default)")
		ps      = flag.String("p", "1,2,4,8", "comma-separated rank counts (powers of two)")
		q       = flag.Int("q", 0, "points per box (0 = default)")
		workers = flag.Int("workers", 0, "host worker goroutines per rank (0 = default)")
		seed    = flag.Int64("seed", 0, "distribution seed (0 = default)")
	)
	flag.Parse()

	opts := experiments.Options{
		N: *n, PerRank: *perRank, Q: *q, Workers: *workers, Seed: *seed,
	}
	for _, s := range strings.Split(*ps, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "fmmbench: bad rank count %q\n", s)
			os.Exit(2)
		}
		opts.Ps = append(opts.Ps, v)
	}

	type runner struct {
		id  string
		run func(experiments.Options) string
	}
	runners := []runner{
		{"table2", func(o experiments.Options) string { return experiments.Table2(o).Format() }},
		{"table3", func(o experiments.Options) string { return experiments.Table3(o).Format() }},
		{"fig3", func(o experiments.Options) string { return experiments.Fig3(o).Format() }},
		{"fig4", func(o experiments.Options) string { return experiments.Fig4(o).Format() }},
		{"fig5", func(o experiments.Options) string { return experiments.Fig5(o).Format() }},
		{"fig6", func(o experiments.Options) string { return experiments.Fig6(o).Format() }},
		{"alg3bound", func(o experiments.Options) string { return experiments.Alg3Bound(o).Format() }},
		{"ablations", func(o experiments.Options) string { return experiments.Ablations(o).Format() }},
	}
	ran := false
	for _, r := range runners {
		if *exp == r.id || *exp == "all" {
			fmt.Println(r.run(opts))
			ran = true
		}
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "fmmbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
