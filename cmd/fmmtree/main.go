// Command fmmtree builds the distributed octree for a chosen configuration
// and reports its structure: leaf counts, level span, per-rank balance, and
// local-essential-tree sizes — the quantities behind the paper's tree
// construction claims (e.g. the 20+-level spread of the nonuniform runs).
package main

import (
	"flag"
	"fmt"
	"os"

	"kifmm/internal/dtree"
	"kifmm/internal/geom"
	"kifmm/internal/mpi"
)

func main() {
	var (
		n        = flag.Int("n", 100000, "global point count")
		p        = flag.Int("p", 4, "rank count")
		q        = flag.Int("q", 50, "max points per leaf octant")
		dist     = flag.String("dist", "ellipsoid", "distribution: uniform or ellipsoid")
		seed     = flag.Int64("seed", 2009, "distribution seed")
		balance  = flag.Bool("balance", true, "apply work-weighted repartitioning")
		maxDepth = flag.Int("maxdepth", 24, "octree depth cap")
	)
	flag.Parse()

	var d geom.Distribution
	switch *dist {
	case "uniform":
		d = geom.Uniform
	case "ellipsoid":
		d = geom.Ellipsoid
	default:
		fmt.Fprintf(os.Stderr, "fmmtree: unknown distribution %q\n", *dist)
		os.Exit(2)
	}

	type rankReport struct {
		leaves, letNodes, ghosts, points int
		minLevel, maxLevel               int
		weight                           int64
		uLen, vLen, wLen, xLen           int
	}
	reports := make([]rankReport, *p)
	mpi.Run(*p, func(c *mpi.Comm) {
		pts := geom.GenerateChunk(d, *n, *seed, c.Rank(), *p)
		leaves := dtree.Points2Octree(c, pts, nil, 0, *q, *maxDepth, nil)
		dt := dtree.BuildLET(c, leaves)
		if *balance {
			w := dtree.LeafWorkWeights(dt, 152)
			leaves = dtree.RepartitionByWeight(c, leaves, w)
			dt = dtree.BuildLET(c, leaves)
		}
		rep := rankReport{leaves: len(dt.Leaves), letNodes: dt.Tree.NumNodes()}
		rep.minLevel = dt.Tree.MinLeafLevel()
		rep.maxLevel = dt.Tree.MaxLevel()
		for i := range dt.Tree.Nodes {
			if !dt.Tree.Nodes[i].Local {
				rep.ghosts++
			}
		}
		rep.points = dt.NumOwnedPoints()
		for _, w := range dtree.LeafWorkWeights(dt, 152) {
			rep.weight += w
		}
		for i := range dt.Tree.Nodes {
			n := &dt.Tree.Nodes[i]
			rep.uLen += len(n.U)
			rep.vLen += len(n.V)
			rep.wLen += len(n.W)
			rep.xLen += len(n.X)
		}
		reports[c.Rank()] = rep
	})

	fmt.Printf("distributed octree: n=%d p=%d q=%d dist=%s balance=%v\n",
		*n, *p, *q, *dist, *balance)
	fmt.Printf("%5s %10s %10s %10s %10s %8s %8s %14s\n",
		"rank", "points", "leaves", "LET", "ghosts", "minlvl", "maxlvl", "work")
	var totLeaves, totPts int
	for r, rep := range reports {
		fmt.Printf("%5d %10d %10d %10d %10d %8d %8d %14d\n",
			r, rep.points, rep.leaves, rep.letNodes, rep.ghosts,
			rep.minLevel, rep.maxLevel, rep.weight)
		totLeaves += rep.leaves
		totPts += rep.points
	}
	fmt.Printf("total: %d points in %d leaves\n", totPts, totLeaves)
	fmt.Printf("%5s %10s %10s %10s %10s\n", "rank", "U-pairs", "V-pairs", "W-pairs", "X-pairs")
	for r, rep := range reports {
		fmt.Printf("%5d %10d %10d %10d %10d\n", r, rep.uLen, rep.vLen, rep.wLen, rep.xLen)
	}
}
