// Command fmmserve runs the FMM evaluation service: an HTTP/JSON server
// with a plan cache (octree + interaction lists + operators reused across
// requests), a bounded worker pool with admission-queue backpressure, and
// Prometheus-style metrics.
//
//	fmmserve -addr :8344 -workers 8 -queue 128
//
//	curl -s localhost:8344/v1/plan -d '{"points":[[0.1,0.2,0.3],...]}'
//	curl -s localhost:8344/v1/evaluate -d '{"plan_id":"...","densities":[...]}'
//	curl -s localhost:8344/metrics
//
// Moving-points workloads (e.g. a particle time-stepper) open a session:
// the server keeps the octree, interaction lists, and engine state resident
// and advances them incrementally per delta instead of re-planning:
//
//	curl -s localhost:8344/v1/session -d '{"points":[[0.1,0.2,0.3],...]}'
//	curl -s localhost:8344/v1/session/<id>/step \
//	    -d '{"move":[{"id":0,"to":[0.11,0.2,0.3]}],"densities":[...]}'
//	curl -s -X DELETE localhost:8344/v1/session/<id>
//
// Sessions are capped by -max-sessions (429 beyond it) and expire after
// -session-ttl idle; a live session pins its originating plan in the cache.
//
// With -trace-dir set, every evaluation additionally dumps a Chrome
// trace_event JSON of the task-graph scheduler's execution (one timeline
// row per worker, one slice per per-octant task) into the directory,
// keeping the newest -trace-keep files (oldest deleted). To inspect one,
// open chrome://tracing in Chrome (or https://ui.perfetto.dev) and load
// eval-NNNNNN.trace.json — phase overlap, work stealing, and idle gaps are
// directly visible.
//
//	fmmserve -addr :8344 -trace-dir /tmp/fmm-traces -trace-keep 16
//
// SIGINT/SIGTERM triggers a graceful drain: admission stops, every admitted
// request completes, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"kifmm/internal/service"
)

func main() {
	var (
		addr       = flag.String("addr", ":8344", "listen address")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "evaluation worker pool size")
		queue      = flag.Int("queue", 64, "admission queue depth (beyond this, 429)")
		cachePlans = flag.Int("cache-plans", 32, "plan cache entry bound")
		cacheBytes = flag.Int64("cache-bytes", 1<<30, "plan cache resident-size bound")
		timeout    = flag.Duration("timeout", 60*time.Second, "per-request deadline")
		drainWait  = flag.Duration("drain", 2*time.Minute, "graceful shutdown drain limit")
		traceDir   = flag.String("trace-dir", "", "dump a Chrome trace JSON per evaluation into this directory (see chrome://tracing)")
		traceKeep  = flag.Int("trace-keep", 32, "trace files retained in -trace-dir (oldest deleted)")
		maxShards  = flag.Int("max-shards", 16, "per-request shard count cap (options.shards beyond this, 400)")
		maxSess    = flag.Int("max-sessions", 16, "concurrent moving-points session cap (beyond this, 429)")
		sessTTL    = flag.Duration("session-ttl", 10*time.Minute, "idle session lifetime (each step resets it)")
		maxBody    = flag.Int64("max-body", 256<<20, "request body size cap in bytes (beyond this, 413)")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheMaxPlans:  *cachePlans,
		CacheMaxBytes:  *cacheBytes,
		RequestTimeout: *timeout,
		TraceDir:       *traceDir,
		TraceKeep:      *traceKeep,
		MaxShards:      *maxShards,
		MaxSessions:    *maxSess,
		SessionTTL:     *sessTTL,
		MaxBodyBytes:   *maxBody,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: svc}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("fmmserve listening on %s (workers=%d queue=%d cache=%d plans/%d bytes)",
		*addr, *workers, *queue, *cachePlans, *cacheBytes)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("draining (limit %v)...", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := svc.Shutdown(dctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("fmmserve stopped")
}
