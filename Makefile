# Developer entry points. `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: build vet test race bench sched-stress ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Repeated race runs of the work-stealing scheduler (randomized-DAG
# property tests are seeded per run, so -count=5 explores new graphs).
sched-stress:
	$(GO) test -race -count=5 ./internal/sched/...

ci: build vet race sched-stress
