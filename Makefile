# Developer entry points. `make ci` is what .github/workflows/ci.yml runs.

GO ?= go

.PHONY: build vet test race bench bench-nearfield bench-nearfield-json bench-json bench-shard bench-session bench-smoke sched-stress shard-stress session-stress lint lint-baseline lint-inject ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem

# Panel vs pairwise micro-kernel comparison on the 30k ellipsoid tree
# (BenchmarkNearField{ULI,D2T,WLI} × {laplace,stokes,yukawa}).
bench-nearfield:
	$(GO) test ./internal/kifmm/ -run='^$$' -bench=BenchmarkNearField -benchmem

# Near-field phase comparison (float64 panels vs float32 panels vs the
# pre-panel pairwise bodies, ULI/D2T/WLI × laplace/stokes/yukawa, plus
# layout construction gated vs mirrors), written as machine-readable JSON
# for EXPERIMENTS.md and CI artifacts. The float32/float64 ULI ratio is the
# mixed-precision acceptance number (DESIGN.md §7.8).
bench-nearfield-json:
	$(GO) run ./cmd/benchjson -pkg ./internal/kifmm/ -bench 'BenchmarkNearField|BenchmarkLayoutBuild' -benchtime 3x -o BENCH_nearfield.json

# V-list phase comparison (fft vs fft-legacy vs dense) on the 30k ellipsoid
# tree, written as machine-readable JSON (ns/op, B/op, allocs/op per
# sub-benchmark) for EXPERIMENTS.md and CI artifacts.
bench-json:
	$(GO) run ./cmd/benchjson -pkg ./internal/kifmm/ -bench BenchmarkVList -benchtime 3x -o BENCH_vlist.json

# Sharded apply on the 100k ellipsoid (R ∈ {1,2,4} × both communication
# backends), written as machine-readable JSON for EXPERIMENTS.md and CI
# artifacts.
bench-shard:
	$(GO) run ./cmd/benchjson -pkg ./internal/shard/ -bench BenchmarkShardedApply -benchtime 3x -o BENCH_shard.json

# Moving-points session step (0.1%/1%/10% migration on the 100k uniform
# ensemble) against the stateless re-plan baselines, written as
# machine-readable JSON for EXPERIMENTS.md and CI artifacts.
bench-session:
	$(GO) run ./cmd/benchjson -pkg ./internal/session/ -bench BenchmarkSessionStep -benchtime 3x -o BENCH_session.json

# Compile-and-run every benchmark exactly once: catches bitrot in benchmark
# code without paying for real measurement (the -run pattern matches no
# tests).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Repeated race runs of the work-stealing scheduler and the par shim
# (randomized-DAG property tests are seeded per run, so -count=5 explores
# new graphs; par's ForW exclusivity contract makes any violation a
# reported race rather than a flaky count).
sched-stress:
	$(GO) test -race -count=5 ./internal/sched/... ./internal/par/...

# Repeated race runs of the sharded differential tests: the multi-rank
# coordinated apply exercises the in-process MPI runtime, the engine free
# list, and the disjoint-write potential gather under the race detector.
shard-stress:
	$(GO) test -race -count=3 ./internal/shard/...

# Repeated race runs of the moving-points session differential tests: the
# incremental tree edits, list patching, and engine-state reuse must agree
# with a fresh plan under the race detector across repeated randomized
# delta sequences.
session-stress:
	$(GO) test -race -count=3 ./internal/session/...

# Project-specific static analysis (DESIGN.md §7.5, §7.9): build the fmmvet
# multichecker and run it twice — through `go vet -vettool` (per-package,
# cached by the go build cache, facts-based interprocedural propagation) and
# standalone (whole-program in one process: lock-order cycle detection plus
# the compiler-backed escape diff against escape_baseline.txt). Both must be
# clean. Machine-readable output is available via `go run ./cmd/fmmvet -json ./...`.
lint:
	$(GO) build -o bin/fmmvet ./cmd/fmmvet
	$(GO) vet -vettool=bin/fmmvet ./...
	$(GO) run ./cmd/fmmvet ./...

# Regenerate escape_baseline.txt after an *intentional* change to hot-path
# escape behavior (new function in the hot closure, refactor that moves an
# allocation). The standalone run (`make lint`) diffs `go build -gcflags=-m=1`
# output for hot-path functions against this file and fails on any new heap
# escape; review the diff in the regenerated baseline before committing it.
lint-baseline:
	$(GO) run ./cmd/fmmvet -write-escape-baseline ./...

# Negative test for the lint gate itself: copies the tree to a scratch dir,
# plants a cross-package hot-path allocation, an AB/BA lock-order cycle, and
# a hot-path escape regression, and asserts each one FAILS fmmvet with the
# expected diagnostic. Guards against the analyzers being silently wedged
# open (a bad baseline, an over-broad allow, a scope bug).
lint-inject:
	./scripts/lint_inject.sh

ci: build vet lint lint-inject race sched-stress shard-stress session-stress bench-smoke
