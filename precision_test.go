package kifmm

import (
	"fmt"
	"math/rand"
	"testing"

	"kifmm/internal/geom"
)

// genPoints draws n points from the named distribution as public Points.
func genPoints(dist geom.Distribution, n int, seed int64) []Point {
	gp := geom.Generate(dist, n, seed)
	pts := make([]Point, len(gp))
	for i, p := range gp {
		pts[i] = Point(p)
	}
	return pts
}

// TestFloat32WithinTruncationBudget is the error-budget contract of the
// mixed-precision near field (DESIGN.md §7.8): for every kernel and both
// benchmark distributions, the deviation a float32 plan introduces against
// the float64 plan must sit below the plan's own truncation error (float64
// plan vs direct summation). If this holds, requesting float32 costs no
// accuracy a user can observe — the far-field truncation already dominates.
//
// Each distribution is pinned at the accuracy regime where the contract is
// meant to hold. Uniform volumes run at the default order: close pairs are
// no closer than the typical spacing, so the float32 floor sits near eps32.
// The ellipsoid surface runs at order 3: panel localization bounds the
// float32 coordinate cancellation by leaf-size/pair-distance, a ~1e-5 floor
// for points crowded on a surface, so float32 is honest only where the
// truncation budget dominates that floor (order 3 → ~2e-4 here; order 5
// would demand more than float32 pair arithmetic can deliver — a plan
// asking for that accuracy should keep the float64 near field, which is why
// PrecisionAuto never silently picks float32).
func TestFloat32WithinTruncationBudget(t *testing.T) {
	kernels := []struct {
		name KernelName
		sdim int
	}{{Laplace, 1}, {Stokes, 3}, {Yukawa, 1}}
	dists := []struct {
		name  string
		dist  geom.Distribution
		order int // 0 keeps the library default
	}{{"uniform", geom.Uniform, 0}, {"ellipsoid", geom.Ellipsoid, 3}}

	for _, k := range kernels {
		for _, d := range dists {
			t.Run(fmt.Sprintf("%s/%s", k.name, d.name), func(t *testing.T) {
				opt := Options{
					Kernel: k.name, PointsPerBox: 30, Workers: 2, Order: d.order,
				}
				if k.name == Yukawa {
					opt.YukawaLambda = 1.3
				}
				pts := genPoints(d.dist, 800, 11)
				rng := rand.New(rand.NewSource(13))
				den := make([]float64, 800*k.sdim)
				for i := range den {
					den[i] = rng.NormFloat64()
				}

				opt.Precision = PrecisionFloat64
				f64, err := New(opt)
				if err != nil {
					t.Fatal(err)
				}
				opt.Precision = PrecisionFloat32
				f32, err := New(opt)
				if err != nil {
					t.Fatal(err)
				}
				if f32.Precision() != PrecisionFloat32 {
					t.Fatalf("Precision() = %v, want float32", f32.Precision())
				}

				p64, err := f64.Evaluate(pts, den)
				if err != nil {
					t.Fatal(err)
				}
				p32, err := f32.Evaluate(pts, den)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := f64.Direct(pts, den)
				if err != nil {
					t.Fatal(err)
				}

				budget := relErr(p64, direct)
				dev := relErr(p32, p64)
				t.Logf("truncation budget %.3g, float32 deviation %.3g", budget, dev)
				if dev > budget {
					t.Fatalf("float32 deviation %g exceeds truncation budget %g", dev, budget)
				}
			})
		}
	}
}

// TestPrecisionAutoBitIdentical pins the compatibility guarantee of the
// default path: with no accelerator in play, PrecisionAuto resolves to
// float64 and must produce bit-identical potentials to an explicit
// PrecisionFloat64 plan — the mixed-precision machinery is invisible until
// asked for.
func TestPrecisionAutoBitIdentical(t *testing.T) {
	pts, den := randInput(700, 1, 5)
	opts := Options{PointsPerBox: 30, Workers: 2}

	fAuto, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if fAuto.Precision() != PrecisionFloat64 {
		t.Fatalf("auto resolved to %v on an unaccelerated plan", fAuto.Precision())
	}
	opts.Precision = PrecisionFloat64
	f64, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}

	a, err := fAuto.Evaluate(pts, den)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f64.Evaluate(pts, den)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("potential %d: auto %v != float64 %v (bit drift on the default path)", i, a[i], b[i])
		}
	}
}

// TestPrecisionValidation pins the option surface: out-of-range values are
// rejected, and the resolved precision is reported on the solver.
func TestPrecisionValidation(t *testing.T) {
	if _, err := New(Options{Precision: Precision(99)}); err == nil {
		t.Fatalf("precision 99 accepted")
	}
	f, err := New(Options{Precision: PrecisionFloat32})
	if err != nil {
		t.Fatal(err)
	}
	if f.Precision() != PrecisionFloat32 {
		t.Fatalf("explicit float32 not honoured: %v", f.Precision())
	}
	if got := PrecisionFloat32.String(); got != "float32" {
		t.Fatalf("String() = %q", got)
	}
}
