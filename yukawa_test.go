package kifmm

import (
	"math"
	"testing"
)

// The Yukawa kernel exercises the per-level (non-scale-invariant) operator
// machinery end to end.

func TestYukawaEvaluateMatchesDirect(t *testing.T) {
	f, err := New(Options{Kernel: Yukawa, YukawaLambda: 5, PointsPerBox: 30, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts, den := randInput(800, 1, 21)
	got, err := f.Evaluate(pts, den)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Direct(pts, den)
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(got, want); e > 5e-5 {
		t.Fatalf("yukawa rel err %g", e)
	}
}

func TestYukawaDenseAndFFTAgree(t *testing.T) {
	pts, den := randInput(600, 1, 22)
	var results [2][]float64
	for i, dense := range []bool{false, true} {
		f, err := New(Options{Kernel: Yukawa, YukawaLambda: 8, PointsPerBox: 25,
			DenseM2L: dense, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Evaluate(pts, den)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = out
	}
	if e := relErr(results[0], results[1]); e > 1e-10 {
		t.Fatalf("yukawa FFT vs dense M2L differ by %g", e)
	}
}

func TestYukawaDistributed(t *testing.T) {
	f, err := New(Options{Kernel: Yukawa, YukawaLambda: 3, PointsPerBox: 25, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	pts, den := randInput(800, 1, 23)
	got, err := f.EvaluateDistributed(4, pts, den)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := f.Direct(pts, den)
	if e := relErr(got, want); e > 5e-5 {
		t.Fatalf("distributed yukawa rel err %g", e)
	}
}

func TestYukawaScreeningDecay(t *testing.T) {
	// Physics: larger λ screens the interaction — far-away pairs contribute
	// exponentially less than under Laplace.
	pts := []Point{{0.1, 0.5, 0.5}, {0.9, 0.5, 0.5}}
	den := []float64{1, 0}
	weak, _ := New(Options{Kernel: Yukawa, YukawaLambda: 1, PointsPerBox: 4, MaxDepth: 4})
	strong, _ := New(Options{Kernel: Yukawa, YukawaLambda: 20, PointsPerBox: 4, MaxDepth: 4})
	w, err := weak.Evaluate(pts, den)
	if err != nil {
		t.Fatal(err)
	}
	s, err := strong.Evaluate(pts, den)
	if err != nil {
		t.Fatal(err)
	}
	if !(math.Abs(s[1]) < math.Abs(w[1])/100) {
		t.Fatalf("screening not decaying: λ=1 gives %g, λ=20 gives %g", w[1], s[1])
	}
}

func TestYukawaRejectsNegativeLambda(t *testing.T) {
	if _, err := New(Options{Kernel: Yukawa, YukawaLambda: -1}); err == nil {
		t.Fatalf("negative screening accepted")
	}
}
